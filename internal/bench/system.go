package bench

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"neobft/internal/chaos"
	"neobft/internal/configsvc"
	"neobft/internal/crypto/auth"
	"neobft/internal/hotstuff"
	"neobft/internal/metrics"
	"neobft/internal/minbft"
	"neobft/internal/neobft"
	"neobft/internal/pbft"
	"neobft/internal/replication"
	"neobft/internal/runtime"
	"neobft/internal/sequencer"
	"neobft/internal/simnet"
	"neobft/internal/store"
	"neobft/internal/tracing"
	"neobft/internal/transport"
	"neobft/internal/transport/udpnet"
	"neobft/internal/unreplicated"
	"neobft/internal/usig"
	"neobft/internal/wire"
	"neobft/internal/zyzzyva"
)

// Protocol names a system under test.
type Protocol string

// The systems of Figs 7–10.
const (
	NeoHM        Protocol = "Neo-HM"
	NeoPK        Protocol = "Neo-PK"
	NeoBN        Protocol = "Neo-BN"
	PBFT         Protocol = "PBFT"
	Zyzzyva      Protocol = "Zyzzyva"
	ZyzzyvaF     Protocol = "Zyzzyva-F"
	HotStuff     Protocol = "HotStuff"
	MinBFT       Protocol = "MinBFT"
	Unreplicated Protocol = "Unreplicated"
)

// AllProtocols lists the systems in the paper's presentation order.
var AllProtocols = []Protocol{Unreplicated, NeoHM, NeoPK, NeoBN, Zyzzyva, ZyzzyvaF, PBFT, HotStuff, MinBFT}

// Invoker is a closed-loop client of any system.
type Invoker interface {
	Invoke(op []byte, deadline time.Duration) ([]byte, error)
}

// Options configures a system under test.
type Options struct {
	Protocol Protocol
	// N is the replica count for 3f+1 protocols (default 4). MinBFT runs
	// 2f+1 replicas for the same f.
	N int
	// AppFactory builds one state machine per replica (default echo).
	AppFactory func(i int) replication.App
	// Net configures the simulated network.
	Net simnet.Options
	// BatchSize for the batching baselines (default 8): the maximum
	// number of requests per batch.
	BatchSize int
	// BatchBytes caps the payload bytes per batch (0 = batch default).
	BatchBytes int
	// BatchLinger bounds how long the oldest queued request may wait
	// before a partial batch is cut anyway (0 = cut whenever polled, the
	// legacy behavior).
	BatchLinger time.Duration
	// BatchAdaptive drives the batch-size target from an EWMA of the
	// leader's queue depth instead of always waiting for BatchSize.
	BatchAdaptive bool
	// ClientWindow is each client's in-flight pipeline window (default 1
	// = closed-loop).
	ClientWindow int
	// CheckpointInterval is the slot interval between checkpoints for
	// every protocol (NeoBFT sync points, PBFT/Zyzzyva/MinBFT stable
	// checkpoints, HotStuff/unreplicated compaction). 0 keeps each
	// protocol's default.
	CheckpointInterval int
	// SignRate for the aom-pk signing-ratio controller (signatures/sec;
	// 0 = sign everything).
	SignRate float64
	// ConfirmFlushEvery batches Neo-BN confirm messages (default 200µs).
	ConfirmFlushEvery time.Duration
	// DropRate injects random drops on sequencer→replica multicast
	// links (Fig 9); applies to NeoBFT systems.
	DropRate float64
	// ClientTimeout is the client retransmission interval (default 1s).
	ClientTimeout time.Duration
	// USIGDelay models the SGX enclave-transition cost per USIG call
	// (MinBFT; default 10µs, the order of an ECALL/OCALL round trip).
	USIGDelay time.Duration
	// VerifyWorkers sets each replica runtime's verification worker
	// count: 0 picks the runtime default, negative runs verification
	// inline on the delivery goroutine.
	VerifyWorkers int
	// Transport selects the fabric the system assembles over: "" or
	// "simnet" for the simulated network (configured by Net), "udp" for
	// real loopback UDP sockets. Ignored when Fabric is set.
	Transport string
	// Fabric, when set, is used directly instead of building one from
	// Transport — e.g. a udpnet.Fabric over a multi-machine address book.
	Fabric transport.Fabric
	// Chaos arms the fault-injection harness: Run executes the schedule
	// during the measured window, wraps every replica's app in a
	// chaos.RecordingApp, and safety-checks the execution histories
	// afterwards (RunResult.Chaos).
	Chaos *chaos.Schedule
	// TraceRate arms cross-node causal tracing: every node gets a
	// tracer, every conn is wrapped to attach/peel trace envelopes, and
	// clients root a sampled trace for roughly this fraction of
	// operations (1 = every op). 0 leaves tracing off entirely — no
	// wrappers are composed and the message path is the untraced one.
	TraceRate float64
	// TraceBuf caps each node tracer's span buffer (0 = tracing default).
	TraceBuf int
	// DataDir arms durable replica state: each replica gets a
	// store.Store under DataDir/replica-<i> journaling executed ops
	// (write-behind) and stable checkpoints (group-commit fsync'd). A
	// killed or crashed replica's warm restart then means "reboot from
	// the data dir": its restore blob is read back from disk rather
	// than from the parent process's memory, and a cold restart wipes
	// the directory first. Empty keeps the legacy in-memory blobs.
	DataDir string
	// FsyncLinger is the store's group-commit linger (see
	// store.Options.FsyncLinger; 0 = store default, <0 = no linger).
	FsyncLinger time.Duration
	// PersistEvery is how often the background persister captures each
	// replica's Persist() blob into its store (default 50ms). Only
	// meaningful with DataDir set.
	PersistEvery time.Duration
}

// System is a running system under test.
type System struct {
	Name string
	// Net is the fabric the system runs over. Capability interfaces
	// (transport.Partitioner, transport.Seeded, ...) are type-asserted by
	// callers that need simnet-only features.
	Net transport.Fabric
	// Transport names the fabric kind actually built ("simnet", "udp",
	// or "custom" for a caller-supplied fabric).
	Transport string
	Svc       *configsvc.Service
	Switches  []configsvc.SwitchHandle

	// NewClient builds a closed-loop client with a unique identity.
	NewClient func(id int) Invoker
	// PerReplicaMsgs returns inbound packet counts per replica.
	PerReplicaMsgs func() []uint64
	// PerReplicaBusy returns per-replica handler busy time.
	PerReplicaBusy func() []time.Duration
	// PerReplicaPkts returns per-replica rx+tx packet counts.
	PerReplicaPkts func() []uint64
	// AuthOps sums authenticator operations (tags + verifies) over all
	// replicas, including client-facing MACs.
	AuthOps func() uint64
	// Committed reports ops executed at replica 0.
	Committed func() uint64
	// Replicas exposes protocol-specific handles (*neobft.Replica etc.).
	Replicas []interface{}
	// Metrics holds one registry per instrumented node: the replica
	// registries in replica order, followed by sequencer-switch
	// registries for the NeoBFT systems. Run merges them into the
	// system-wide snapshot of RunResult.Metrics.
	Metrics []*metrics.Registry
	// Close stops everything.
	Close func()

	// Node lifecycle (chaos harness). Crash persists replica i's stable
	// checkpoint and stops it; Restart boots it again, warm from that
	// blob or cold (discarding it, forcing snapshot state transfer from
	// peers). All are installed for every protocol.
	Crash   func(i int) error
	Restart func(i int, cold bool) error
	// Kill stops replica i without the graceful final persist — the
	// in-process equivalent of SIGKILL. With DataDir set, a warm
	// restart then recovers from whatever the background persister
	// last made durable; without it the restart is effectively cold.
	Kill func(i int) error
	// Alive reports whether replica i is running.
	Alive func(i int) bool
	// SkewClock multiplies replica i's timer durations by factor.
	SkewClock func(i int, factor float64)
	// CrashSequencer crashes the live sequencer switch (NeoBFT systems
	// only; nil or false otherwise).
	CrashSequencer func() bool
	// ExecutedAt reports ops executed at replica i.
	ExecutedAt func(i int) uint64
	// ReplicaID maps replica index to network node ID.
	ReplicaID func(i int) transport.NodeID
	// NumReplicas is the replica count actually built (MinBFT runs 2f+1).
	NumReplicas int

	// Chaos is the armed schedule (nil unless Options.Chaos was set) and
	// RecApps the per-replica recording wrappers feeding the checker.
	Chaos   *chaos.Schedule
	RecApps []*chaos.RecordingApp

	// Tracers holds every node tracer created for this system — replicas
	// and sequencer switches at build time, clients as NewClient runs —
	// when Options.TraceRate > 0; empty otherwise. DrainSpans merges
	// their span buffers into the dump cmd/neotrace consumes.
	Tracers []*tracing.Tracer
	traceMu sync.Mutex
	// BatchMax, BatchBytes, BatchLinger, BatchAdaptive and ClientWindow
	// record the batching/pipelining configuration the system was built
	// with; the load generators copy them into RunResult.Config.
	BatchMax      int
	BatchBytes    int
	BatchLinger   time.Duration
	BatchAdaptive bool
	ClientWindow  int

	// Durable records whether the system persists replica state to a
	// data dir, and FsyncLinger the group-commit linger it was built
	// with; the load generators copy both into RunResult.Config so
	// metrics.csv rows distinguish durable from in-memory runs.
	Durable     bool
	FsyncLinger time.Duration

	// stores holds the per-replica durable stores when Options.DataDir
	// was set (entries are swapped by restarts); preRegs are the
	// replica registries, created before the protocol builders run so
	// the stores can register their metrics into them.
	stores  []*store.Store
	preRegs []*metrics.Registry
	lc      *lifecycle

	// clientReg is the registry shared by every client: client tracers
	// (phase_e2e_ns / phase_reply_ns are observed client-side) and the
	// replication-client series (client_retransmits_total, client_inflight).
	// It is appended to Metrics after the replica and switch registries so
	// index-based node→registry mappings stay stable.
	clientReg *metrics.Registry
	// chaosTr records injected faults as always-sampled spans.
	chaosTr *tracing.Tracer
}

// newTracer creates one node tracer when tracing is enabled, recording
// it on the system for DrainSpans. With tracing off it returns nil, and
// every wrap helper below passes the inner value through untouched.
func (sys *System) newTracer(o Options, node string, reg *metrics.Registry) *tracing.Tracer {
	if o.TraceRate <= 0 {
		return nil
	}
	tr := tracing.New(tracing.Config{Node: node, Rate: o.TraceRate, BufCap: o.TraceBuf, Metrics: reg})
	sys.traceMu.Lock()
	sys.Tracers = append(sys.Tracers, tr)
	sys.traceMu.Unlock()
	return tr
}

// DrainSpans snapshots every tracer's recorded spans, across all nodes
// and clients — the in-process equivalent of concatenating per-process
// span dumps. Feed the result to tracing.BuildTimelines.
func (sys *System) DrainSpans() []tracing.Span {
	sys.traceMu.Lock()
	trs := append([]*tracing.Tracer(nil), sys.Tracers...)
	sys.traceMu.Unlock()
	var out []tracing.Span
	for _, tr := range trs {
		out = append(out, tr.Drain()...)
	}
	return out
}

// Starter is a pipelined client: Start submits an operation without
// waiting for its result. Every protocol client in this repository
// implements it alongside the closed-loop Invoke.
type Starter interface {
	Start(op []byte, deadline time.Duration) replication.Call
}

// starterInvoker pairs the traced closed-loop view of a client with its
// raw pipelined Start. Trace roots cover Invoke only: pipelined
// operations overlap, so a per-op root span has no single active window
// on the client goroutine.
type starterInvoker struct {
	Invoker
	s Starter
}

func (si starterInvoker) Start(op []byte, deadline time.Duration) replication.Call {
	return si.s.Start(op, deadline)
}

// traceInvoker decorates a protocol client with the trace-root wrapper
// (sampling decision + request span) when tracing is on, preserving the
// client's pipelined Start.
func traceInvoker(in Invoker, tr *tracing.Tracer) Invoker {
	if tr == nil {
		return in
	}
	traced := tracing.WrapInvoker(in, tr)
	if s, ok := in.(Starter); ok {
		return starterInvoker{Invoker: traced, s: s}
	}
	return traced
}

// clientTuning bundles the windowing/backoff/metrics knobs every
// protocol client receives.
func clientTuning(sys *System, o Options) replication.Tuning {
	return replication.Tuning{
		Window:  o.ClientWindow,
		Timeout: o.ClientTimeout,
		Metrics: sys.clientReg,
	}
}

const (
	switchBase = transport.NodeID(20000)
	clientBase = transport.NodeID(10000)
)

// FleetSize reports how many replicas Build will create for the given
// protocol and configured N (0 = default). Chaos schedules are generated
// against this count so fault targets stay in range.
func FleetSize(p Protocol, n int) int {
	if n == 0 {
		n = 4
	}
	f := (n - 1) / 3
	if f < 1 && p != Unreplicated {
		f = 1
	}
	switch p {
	case Unreplicated:
		return 1
	case MinBFT:
		return 2*f + 1
	default:
		return n
	}
}

// Build constructs and starts a system under test.
func Build(o Options) *System {
	if o.N == 0 {
		o.N = 4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 8
	}
	if o.ConfirmFlushEvery == 0 {
		o.ConfirmFlushEvery = 200 * time.Microsecond
	}
	if o.ClientTimeout == 0 {
		o.ClientTimeout = time.Second
	}
	if o.ClientWindow == 0 {
		o.ClientWindow = 1
	}
	if o.AppFactory == nil {
		o.AppFactory = func(int) replication.App { return replication.EchoApp{} }
	}
	if o.USIGDelay == 0 {
		o.USIGDelay = 10 * time.Microsecond
	}
	f := (o.N - 1) / 3
	if f < 1 && o.Protocol != Unreplicated {
		f = 1
	}
	sys := &System{
		Name:          string(o.Protocol),
		BatchMax:      o.BatchSize,
		BatchBytes:    o.BatchBytes,
		BatchLinger:   o.BatchLinger,
		BatchAdaptive: o.BatchAdaptive,
		ClientWindow:  o.ClientWindow,
	}
	sys.clientReg = metrics.NewRegistry()
	var fab transport.Fabric
	switch {
	case o.Fabric != nil:
		fab = o.Fabric
		sys.Transport = o.Transport
		if sys.Transport == "" {
			sys.Transport = "custom"
		}
	case o.Transport == "udp":
		// Real loopback UDP sockets, bound on demand. Per-node conn
		// counters land in the node's shared metrics registry (replica i
		// has node ID i+1; switches and clients get private registries).
		fab = udpnet.NewLoopback(udpnet.FabricConfig{
			Config: udpnet.Config{RcvBuf: 1 << 20, SndBuf: 1 << 20},
			MetricsFor: func(id transport.NodeID) *metrics.Registry {
				if i := int(id) - 1; i >= 0 && i < len(sys.Metrics) {
					return sys.Metrics[i]
				}
				return nil
			},
		})
		sys.Transport = "udp"
	case o.Transport == "" || o.Transport == "simnet":
		netOpts := o.Net
		if netOpts.Latency > 0 && netOpts.LatencyOverride == nil {
			// The sequencer switch sits on the client→replica path: traffic
			// through it pays half the host-to-host latency on each leg plus
			// the authentication-pipeline latency on the stamped leg
			// (Figs 4-5: ~9µs for aom-hm, ~3µs for aom-pk).
			half := netOpts.Latency / 2
			pipeline := 9 * time.Microsecond
			if o.Protocol == NeoPK {
				pipeline = 3 * time.Microsecond
			}
			netOpts.LatencyOverride = func(from, to transport.NodeID) (time.Duration, bool) {
				if to >= switchBase {
					return half, true
				}
				if from >= switchBase {
					return half + pipeline, true
				}
				return 0, false
			}
		}
		if o.DropRate > 0 {
			netOpts.DropRate = o.DropRate
			netOpts.DropFilter = func(from, to transport.NodeID) bool {
				return from >= switchBase // only aom multicast drops
			}
		}
		fab = simnet.Fabric{Network: simnet.New(netOpts)}
		sys.Transport = "simnet"
	default:
		panic(fmt.Sprintf("bench: unknown transport %q", o.Transport))
	}
	sys.Net = fab
	// Replica registries are created before the protocol builders run
	// (newRegistries hands these out) so the durable stores can
	// register their metrics into the same per-replica registries.
	nrep := FleetSize(o.Protocol, o.N)
	sys.preRegs = make([]*metrics.Registry, nrep)
	for i := range sys.preRegs {
		sys.preRegs[i] = metrics.NewRegistry()
	}
	metrics.RegisterHeapGauges(sys.preRegs[0])
	sys.Metrics = append(sys.Metrics, sys.preRegs...)
	if o.DataDir != "" {
		sys.Durable = true
		sys.FsyncLinger = o.FsyncLinger
		sys.stores = make([]*store.Store, nrep)
		for i := range sys.stores {
			st, err := store.Open(replicaDir(o.DataDir, i), store.Options{
				FsyncLinger: o.FsyncLinger,
				Metrics:     sys.preRegs[i],
			})
			if err != nil {
				panic(fmt.Sprintf("bench: open store for replica %d: %v", i, err))
			}
			sys.stores[i] = st
		}
		// Journal every executed op (write-behind) through the
		// replica's current store. The factory reads sys.stores at
		// boot time, so a restarted replica journals into the store
		// its restart reopened.
		inner := o.AppFactory
		o.AppFactory = func(i int) replication.App {
			return store.Durable(inner(i), sys.stores[i])
		}
	}
	if o.Chaos != nil {
		// Wrap every replica's app so execution histories are recorded
		// for the post-run safety check. The wrapper snapshots/restores
		// the history alongside the inner app, so state transfer carries
		// it to recovering replicas.
		sys.Chaos = o.Chaos
		inner := o.AppFactory
		o.AppFactory = func(i int) replication.App {
			ra := chaos.NewRecordingApp(inner(i))
			for len(sys.RecApps) <= i {
				sys.RecApps = append(sys.RecApps, nil)
			}
			sys.RecApps[i] = ra
			return ra
		}
	}

	switch o.Protocol {
	case NeoHM, NeoPK, NeoBN:
		buildNeo(sys, o, fab, f)
	case PBFT:
		buildPBFT(sys, o, fab, f)
	case Zyzzyva, ZyzzyvaF:
		buildZyzzyva(sys, o, fab, f)
	case HotStuff:
		buildHotStuff(sys, o, fab, f)
	case MinBFT:
		buildMinBFT(sys, o, fab, f)
	case Unreplicated:
		buildUnreplicated(sys, o, fab)
	default:
		panic(fmt.Sprintf("bench: unknown protocol %q", o.Protocol))
	}
	// Appended after the replica and switch registries: the udp fabric's
	// MetricsFor maps node ID i+1 to Metrics[i], so the client registry
	// must not shift those indices.
	sys.Metrics = append(sys.Metrics, sys.clientReg)
	if o.TraceRate > 0 {
		sys.chaosTr = sys.newTracer(o, "chaos", nil)
	}
	if sys.stores != nil && sys.lc != nil {
		// All protocol closures are set now: arm the disk-backed
		// lifecycle (kill-and-recover restarts + background persister)
		// and make Close flush and release the stores.
		sys.lc.armStores(sys.stores, o)
		inner := sys.Close
		sys.Close = func() {
			sys.lc.stopPersister()
			inner()
			for _, st := range sys.stores {
				if st != nil {
					st.Close()
				}
			}
		}
	}
	return sys
}

// replicaDir is replica i's store directory under a system data dir.
func replicaDir(dataDir string, i int) string {
	return filepath.Join(dataDir, fmt.Sprintf("replica-%d", i))
}

// join attaches a node to the fabric, panicking on failure — system
// assembly joins statically chosen IDs, for which failure is a
// programming error (duplicate ID) or an unusable environment.
func join(fab transport.Fabric, id transport.NodeID) transport.Conn {
	c, err := fab.Join(id)
	if err != nil {
		panic(fmt.Sprintf("bench: join node %d: %v", id, err))
	}
	return c
}

// countingConn wraps a transport.Conn, counting inbound and outbound
// packets. Handler busy time is measured by the replica runtimes (see
// busyCounter), which time verification and apply work directly.
//
// The inner conn is swappable: a crash–restart cycle closes the old
// simnet node and joins a fresh one, but keeps the countingConn (and its
// counters) so per-replica packet accounting spans restarts.
type countingConn struct {
	mu    sync.RWMutex
	conn  transport.Conn
	count atomic.Uint64
	sent  atomic.Uint64
}

func (c *countingConn) inner() transport.Conn {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.conn
}

// swap replaces the inner conn (the handler is re-installed by the new
// replica's runtime right after).
func (c *countingConn) swap(conn transport.Conn) {
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
}

func (c *countingConn) ID() transport.NodeID { return c.inner().ID() }

func (c *countingConn) Close() error { return c.inner().Close() }

func (c *countingConn) SetHandler(h transport.Handler) {
	c.inner().SetHandler(func(from transport.NodeID, pkt []byte) {
		c.count.Add(1)
		h(from, pkt)
	})
}

func (c *countingConn) Send(to transport.NodeID, pkt []byte) {
	c.sent.Add(1)
	c.inner().Send(to, pkt)
}

func members(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(i + 1)
	}
	return out
}

func joinCounting(fab transport.Fabric, id transport.NodeID) *countingConn {
	return &countingConn{conn: join(fab, id)}
}

func msgCounter(conns []*countingConn) func() []uint64 {
	return func() []uint64 {
		out := make([]uint64, len(conns))
		for i, c := range conns {
			out[i] = c.count.Load()
		}
		return out
	}
}

func pktCounter(conns []*countingConn) func() []uint64 {
	return func() []uint64 {
		out := make([]uint64, len(conns))
		for i, c := range conns {
			out[i] = c.count.Load() + c.sent.Load()
		}
		return out
	}
}

// newRuntime builds one replica runtime over a counted (and, when
// tracing, envelope-wrapped) conn, honoring the benchmark's worker
// override and registering the runtime stages into the replica's shared
// metrics registry.
func newRuntime(conn transport.Conn, workers int, reg *metrics.Registry, tr *tracing.Tracer) *runtime.Runtime {
	return runtime.New(runtime.Config{Conn: conn, Workers: workers, Metrics: reg, Tracer: tr})
}

// newRegistries hands each builder the per-replica registries Build
// pre-created (and already appended to sys.Metrics). The process-wide
// Go heap gauges live on the first registry only: Merge sums Func
// samples, so registering them per replica would multiply the
// (shared) heap by n.
func newRegistries(sys *System, n int) []*metrics.Registry {
	if n != len(sys.preRegs) {
		panic(fmt.Sprintf("bench: builder wants %d registries, FleetSize said %d", n, len(sys.preRegs)))
	}
	return sys.preRegs
}

// busyCounter reports per-replica busy time (verification + apply) from
// the runtimes. The busy time of the busiest replica is what bounds
// throughput when every replica has its own machine (the paper's
// deployment), so ops ÷ max-busy-time projects the bottleneck
// throughput from a co-located run.
func busyCounter(rts []*runtime.Runtime) func() []time.Duration {
	return func() []time.Duration {
		out := make([]time.Duration, len(rts))
		for i, rt := range rts {
			out[i] = rt.Busy()
		}
		return out
	}
}

func authCounter(auths []*auth.HMACAuth, clientSides []*auth.ReplicaSide) func() uint64 {
	return func() uint64 {
		var sum uint64
		for _, a := range auths {
			sum += a.Stats().TagOps.Load() + a.Stats().VerifyOps.Load()
		}
		for _, c := range clientSides {
			sum += c.Stats().TagOps.Load() + c.Stats().VerifyOps.Load()
		}
		return sum
	}
}

const (
	replicaMaster = "replica-master"
	clientMaster  = "client-master"
)

func buildNeo(sys *System, o Options, fab transport.Fabric, f int) {
	variant := wire.AuthHMAC
	if o.Protocol == NeoPK {
		variant = wire.AuthPK
	}
	byz := o.Protocol == NeoBN
	svc := configsvc.New(variant, []byte("aom-master"))
	sys.Svc = svc
	var swRegs []*metrics.Registry
	for i := 0; i < 2; i++ {
		id := switchBase + transport.NodeID(i)
		swReg := metrics.NewRegistry()
		swTr := sys.newTracer(o, fmt.Sprintf("sequencer-%d", i), swReg)
		sw := sequencer.New(tracing.WrapConn(join(fab, id), swTr), sequencer.Options{
			Variant:  variant,
			PKSeed:   []byte{byte(i + 1)},
			SignRate: o.SignRate,
			Metrics:  swReg,
			Tracer:   swTr,
		})
		swRegs = append(swRegs, swReg)
		h := configsvc.SwitchHandle{ID: id, SW: sw}
		sys.Switches = append(sys.Switches, h)
		svc.RegisterSwitch(h)
	}
	mem := members(o.N)
	if _, err := svc.CreateGroup(1, mem); err != nil {
		panic(err)
	}
	conns := make([]*countingConn, o.N)
	rconns := make([]transport.Conn, o.N)
	trs := make([]*tracing.Tracer, o.N)
	rts := make([]*runtime.Runtime, o.N)
	auths := make([]*auth.HMACAuth, o.N)
	csides := make([]*auth.ReplicaSide, o.N)
	replicas := make([]*neobft.Replica, o.N)
	regs := newRegistries(sys, o.N)
	sys.Metrics = append(sys.Metrics, swRegs...)
	for i := 0; i < o.N; i++ {
		conns[i] = joinCounting(fab, mem[i])
		trs[i] = sys.newTracer(o, fmt.Sprintf("replica-%d", i), regs[i])
		rconns[i] = tracing.WrapConn(conns[i], trs[i])
		rts[i] = newRuntime(rconns[i], o.VerifyWorkers, regs[i], trs[i])
		auths[i] = auth.NewHMACAuth([]byte(replicaMaster), i, o.N)
		csides[i] = auth.NewReplicaSide([]byte(clientMaster), i)
		replicas[i] = neobft.New(neobft.Config{
			Self: i, N: o.N, F: f,
			Members:           mem,
			Group:             1,
			Conn:              rconns[i],
			Auth:              auths[i],
			ClientAuth:        csides[i],
			App:               o.AppFactory(i),
			Variant:           variant,
			Byzantine:         byz,
			SyncInterval:      o.CheckpointInterval,
			ConfirmFlushEvery: o.ConfirmFlushEvery,
			ConfirmBatch:      16,
			Svc:               svc,
			Runtime:           rts[i],
			Metrics:           regs[i],
		})
		sys.Replicas = append(sys.Replicas, replicas[i])
	}
	sys.PerReplicaMsgs = msgCounter(conns)
	sys.PerReplicaBusy = busyCounter(rts)
	sys.PerReplicaPkts = pktCounter(conns)
	sys.AuthOps = authCounter(auths, csides)
	sys.Committed = func() uint64 { return replicas[0].Committed() }
	sys.NewClient = func(id int) Invoker {
		ctr := sys.newTracer(o, fmt.Sprintf("client-%d", id), sys.clientReg)
		cl, err := neobft.NewClient(neobft.ClientOptions{
			Conn:     tracing.WrapConn(join(fab, clientBase+transport.NodeID(id)), ctr),
			Master:   []byte(clientMaster),
			N:        o.N,
			F:        f,
			Replicas: mem,
			Group:    1,
			Svc:      svc,
			Tune:     clientTuning(sys, o),
		})
		if err != nil {
			panic(err)
		}
		return traceInvoker(cl, ctr)
	}
	sys.Close = func() {
		for _, r := range replicas {
			r.Close()
		}
		fab.Close()
	}
	sys.CrashSequencer = func() bool {
		v, err := svc.View(1)
		if err != nil {
			return false
		}
		for _, h := range sys.Switches {
			if h.ID == v.Sequencer {
				h.SW.SetFault(sequencer.FaultCrash)
				return true
			}
		}
		return false
	}
	lc := installLifecycle(sys, fab, o, mem, conns, rconns, trs, rts, regs)
	lc.persist = func(i int) []byte { return replicas[i].Persist() }
	lc.stop = func(i int) { replicas[i].Close() }
	lc.executed = func(i int) uint64 { return replicas[i].Committed() }
	// The op counter resets on restart; the speculative-execution slot is
	// restored from the checkpoint, so catch-up is measured against it.
	lc.progress = func(i int) uint64 { return replicas[i].Executed() }
	lc.boot = func(i int, restore []byte) {
		replicas[i] = neobft.New(neobft.Config{
			Self: i, N: o.N, F: f,
			Members:           mem,
			Group:             1,
			Conn:              rconns[i],
			Auth:              auths[i],
			ClientAuth:        csides[i],
			App:               o.AppFactory(i),
			Variant:           variant,
			Byzantine:         byz,
			SyncInterval:      o.CheckpointInterval,
			ConfirmFlushEvery: o.ConfirmFlushEvery,
			ConfirmBatch:      16,
			Svc:               svc,
			Runtime:           lc.rts[i],
			Metrics:           regs[i],
			Restore:           restore,
		})
		sys.Replicas[i] = replicas[i]
	}
}

func buildPBFT(sys *System, o Options, fab transport.Fabric, f int) {
	mem := members(o.N)
	conns := make([]*countingConn, o.N)
	rconns := make([]transport.Conn, o.N)
	trs := make([]*tracing.Tracer, o.N)
	rts := make([]*runtime.Runtime, o.N)
	auths := make([]*auth.HMACAuth, o.N)
	csides := make([]*auth.ReplicaSide, o.N)
	replicas := make([]*pbft.Replica, o.N)
	regs := newRegistries(sys, o.N)
	for i := 0; i < o.N; i++ {
		conns[i] = joinCounting(fab, mem[i])
		trs[i] = sys.newTracer(o, fmt.Sprintf("replica-%d", i), regs[i])
		rconns[i] = tracing.WrapConn(conns[i], trs[i])
		rts[i] = newRuntime(rconns[i], o.VerifyWorkers, regs[i], trs[i])
		auths[i] = auth.NewHMACAuth([]byte(replicaMaster), i, o.N)
		csides[i] = auth.NewReplicaSide([]byte(clientMaster), i)
		replicas[i] = pbft.New(pbft.Config{
			Self: i, N: o.N, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Runtime:            rts[i],
			Metrics:            regs[i],
		})
		sys.Replicas = append(sys.Replicas, replicas[i])
	}
	sys.PerReplicaMsgs = msgCounter(conns)
	sys.PerReplicaBusy = busyCounter(rts)
	sys.PerReplicaPkts = pktCounter(conns)
	sys.AuthOps = authCounter(auths, csides)
	sys.Committed = func() uint64 { return replicas[0].Executed() }
	sys.NewClient = func(id int) Invoker {
		ctr := sys.newTracer(o, fmt.Sprintf("client-%d", id), sys.clientReg)
		return traceInvoker(pbft.NewClient(
			tracing.WrapConn(join(fab, clientBase+transport.NodeID(id)), ctr),
			[]byte(clientMaster), o.N, f, mem, clientTuning(sys, o)), ctr)
	}
	sys.Close = func() {
		for _, r := range replicas {
			r.Close()
		}
		fab.Close()
	}
	lc := installLifecycle(sys, fab, o, mem, conns, rconns, trs, rts, regs)
	lc.persist = func(i int) []byte { return replicas[i].Persist() }
	lc.stop = func(i int) { replicas[i].Close() }
	lc.executed = func(i int) uint64 { return replicas[i].Executed() }
	lc.boot = func(i int, restore []byte) {
		replicas[i] = pbft.New(pbft.Config{
			Self: i, N: o.N, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Runtime:            lc.rts[i],
			Metrics:            regs[i],
			Restore:            restore,
		})
		sys.Replicas[i] = replicas[i]
	}
}

func buildZyzzyva(sys *System, o Options, fab transport.Fabric, f int) {
	mem := members(o.N)
	conns := make([]*countingConn, o.N)
	rconns := make([]transport.Conn, o.N)
	trs := make([]*tracing.Tracer, o.N)
	rts := make([]*runtime.Runtime, o.N)
	auths := make([]*auth.HMACAuth, o.N)
	csides := make([]*auth.ReplicaSide, o.N)
	replicas := make([]*zyzzyva.Replica, o.N)
	regs := newRegistries(sys, o.N)
	for i := 0; i < o.N; i++ {
		conns[i] = joinCounting(fab, mem[i])
		trs[i] = sys.newTracer(o, fmt.Sprintf("replica-%d", i), regs[i])
		rconns[i] = tracing.WrapConn(conns[i], trs[i])
		rts[i] = newRuntime(rconns[i], o.VerifyWorkers, regs[i], trs[i])
		auths[i] = auth.NewHMACAuth([]byte(replicaMaster), i, o.N)
		csides[i] = auth.NewReplicaSide([]byte(clientMaster), i)
		replicas[i] = zyzzyva.New(zyzzyva.Config{
			Self: i, N: o.N, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Silent:             o.Protocol == ZyzzyvaF && i == o.N-1,
			Runtime:            rts[i],
			Metrics:            regs[i],
		})
		sys.Replicas = append(sys.Replicas, replicas[i])
	}
	// On a shared single core the 4th speculative response can lag; a
	// larger speculative timeout keeps fault-free Zyzzyva on its fast
	// path while still penalizing Zyzzyva-F heavily per operation.
	specTimeout := 20 * time.Millisecond
	sys.PerReplicaMsgs = msgCounter(conns)
	sys.PerReplicaBusy = busyCounter(rts)
	sys.PerReplicaPkts = pktCounter(conns)
	sys.AuthOps = authCounter(auths, csides)
	sys.Committed = func() uint64 { return replicas[0].Executed() }
	sys.NewClient = func(id int) Invoker {
		ctr := sys.newTracer(o, fmt.Sprintf("client-%d", id), sys.clientReg)
		return traceInvoker(zyzzyva.NewClient(
			tracing.WrapConn(join(fab, clientBase+transport.NodeID(id)), ctr),
			[]byte(clientMaster), o.N, f, mem, specTimeout, clientTuning(sys, o)), ctr)
	}
	sys.Close = func() {
		for _, r := range replicas {
			r.Close()
		}
		fab.Close()
	}
	lc := installLifecycle(sys, fab, o, mem, conns, rconns, trs, rts, regs)
	lc.persist = func(i int) []byte { return replicas[i].Persist() }
	lc.stop = func(i int) { replicas[i].Close() }
	lc.executed = func(i int) uint64 { return replicas[i].Executed() }
	lc.boot = func(i int, restore []byte) {
		replicas[i] = zyzzyva.New(zyzzyva.Config{
			Self: i, N: o.N, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Silent:             o.Protocol == ZyzzyvaF && i == o.N-1,
			Runtime:            lc.rts[i],
			Metrics:            regs[i],
			Restore:            restore,
		})
		sys.Replicas[i] = replicas[i]
	}
}

func buildHotStuff(sys *System, o Options, fab transport.Fabric, f int) {
	mem := members(o.N)
	conns := make([]*countingConn, o.N)
	rconns := make([]transport.Conn, o.N)
	trs := make([]*tracing.Tracer, o.N)
	rts := make([]*runtime.Runtime, o.N)
	auths := make([]*auth.HMACAuth, o.N)
	csides := make([]*auth.ReplicaSide, o.N)
	replicas := make([]*hotstuff.Replica, o.N)
	regs := newRegistries(sys, o.N)
	for i := 0; i < o.N; i++ {
		conns[i] = joinCounting(fab, mem[i])
		trs[i] = sys.newTracer(o, fmt.Sprintf("replica-%d", i), regs[i])
		rconns[i] = tracing.WrapConn(conns[i], trs[i])
		rts[i] = newRuntime(rconns[i], o.VerifyWorkers, regs[i], trs[i])
		auths[i] = auth.NewHMACAuth([]byte(replicaMaster), i, o.N)
		csides[i] = auth.NewReplicaSide([]byte(clientMaster), i)
		replicas[i] = hotstuff.New(hotstuff.Config{
			Self: i, N: o.N, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Runtime:            rts[i],
			Metrics:            regs[i],
		})
		sys.Replicas = append(sys.Replicas, replicas[i])
	}
	sys.PerReplicaMsgs = msgCounter(conns)
	sys.PerReplicaBusy = busyCounter(rts)
	sys.PerReplicaPkts = pktCounter(conns)
	sys.AuthOps = authCounter(auths, csides)
	sys.Committed = func() uint64 { return replicas[0].Executed() }
	sys.NewClient = func(id int) Invoker {
		ctr := sys.newTracer(o, fmt.Sprintf("client-%d", id), sys.clientReg)
		return traceInvoker(hotstuff.NewClient(
			tracing.WrapConn(join(fab, clientBase+transport.NodeID(id)), ctr),
			[]byte(clientMaster), o.N, f, mem, clientTuning(sys, o)), ctr)
	}
	sys.Close = func() {
		for _, r := range replicas {
			r.Close()
		}
		fab.Close()
	}
	lc := installLifecycle(sys, fab, o, mem, conns, rconns, trs, rts, regs)
	lc.persist = func(i int) []byte { return replicas[i].Persist() }
	lc.stop = func(i int) { replicas[i].Close() }
	lc.executed = func(i int) uint64 { return replicas[i].Executed() }
	lc.boot = func(i int, restore []byte) {
		replicas[i] = hotstuff.New(hotstuff.Config{
			Self: i, N: o.N, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Runtime:            lc.rts[i],
			Metrics:            regs[i],
			Restore:            restore,
		})
		sys.Replicas[i] = replicas[i]
	}
}

func buildMinBFT(sys *System, o Options, fab transport.Fabric, f int) {
	n := 2*f + 1 // trusted components reduce the replication factor
	mem := members(n)
	conns := make([]*countingConn, n)
	rconns := make([]transport.Conn, n)
	trs := make([]*tracing.Tracer, n)
	rts := make([]*runtime.Runtime, n)
	auths := make([]*auth.HMACAuth, n)
	csides := make([]*auth.ReplicaSide, n)
	usigs := make([]*usig.USIG, n)
	replicas := make([]*minbft.Replica, n)
	regs := newRegistries(sys, n)
	for i := 0; i < n; i++ {
		conns[i] = joinCounting(fab, mem[i])
		trs[i] = sys.newTracer(o, fmt.Sprintf("replica-%d", i), regs[i])
		rconns[i] = tracing.WrapConn(conns[i], trs[i])
		rts[i] = newRuntime(rconns[i], o.VerifyWorkers, regs[i], trs[i])
		auths[i] = auth.NewHMACAuth([]byte(replicaMaster), i, n)
		csides[i] = auth.NewReplicaSide([]byte(clientMaster), i)
		usigs[i] = usig.New(uint32(i), []byte("sgx-master")).WithEnclaveDelay(o.USIGDelay)
		replicas[i] = minbft.New(minbft.Config{
			Self: i, N: n, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			USIG:               usigs[i],
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Runtime:            rts[i],
			Metrics:            regs[i],
		})
		sys.Replicas = append(sys.Replicas, replicas[i])
	}
	sys.PerReplicaMsgs = msgCounter(conns)
	sys.PerReplicaBusy = busyCounter(rts)
	sys.PerReplicaPkts = pktCounter(conns)
	baseAuth := authCounter(auths, csides)
	sys.AuthOps = func() uint64 {
		// UIs are MinBFT's authenticators: count trusted-component ops too.
		sum := baseAuth()
		for _, u := range usigs {
			sum += u.Ops()
		}
		return sum
	}
	sys.Committed = func() uint64 { return replicas[0].Executed() }
	sys.NewClient = func(id int) Invoker {
		ctr := sys.newTracer(o, fmt.Sprintf("client-%d", id), sys.clientReg)
		return traceInvoker(minbft.NewClient(
			tracing.WrapConn(join(fab, clientBase+transport.NodeID(id)), ctr),
			[]byte(clientMaster), n, f, mem, clientTuning(sys, o)), ctr)
	}
	sys.Close = func() {
		for _, r := range replicas {
			r.Close()
		}
		fab.Close()
	}
	lc := installLifecycle(sys, fab, o, mem, conns, rconns, trs, rts, regs)
	lc.persist = func(i int) []byte { return replicas[i].Persist() }
	lc.stop = func(i int) { replicas[i].Close() }
	lc.executed = func(i int) uint64 { return replicas[i].Executed() }
	lc.boot = func(i int, restore []byte) {
		// The USIG instance survives the restart: it models a trusted
		// counter in an enclave, whose monotonic state outlives crashes
		// of the untrusted replica process around it.
		replicas[i] = minbft.New(minbft.Config{
			Self: i, N: n, F: f,
			Members:            mem,
			Conn:               rconns[i],
			Auth:               auths[i],
			ClientAuth:         csides[i],
			App:                o.AppFactory(i),
			USIG:               usigs[i],
			BatchSize:          o.BatchSize,
			BatchBytes:         o.BatchBytes,
			BatchLinger:        o.BatchLinger,
			BatchAdaptive:      o.BatchAdaptive,
			CheckpointInterval: o.CheckpointInterval,
			Runtime:            lc.rts[i],
			Metrics:            regs[i],
			Restore:            restore,
		})
		sys.Replicas[i] = replicas[i]
	}
}

func buildUnreplicated(sys *System, o Options, fab transport.Fabric) {
	mem := members(1)
	conns := []*countingConn{joinCounting(fab, mem[0])}
	regs := newRegistries(sys, 1)
	trs := []*tracing.Tracer{sys.newTracer(o, "replica-0", regs[0])}
	rconns := []transport.Conn{tracing.WrapConn(conns[0], trs[0])}
	rts := []*runtime.Runtime{newRuntime(rconns[0], o.VerifyWorkers, regs[0], trs[0])}
	cside := auth.NewReplicaSide([]byte(clientMaster), 0)
	servers := []*unreplicated.Server{unreplicated.New(unreplicated.Config{
		Conn: rconns[0], App: o.AppFactory(0), ClientAuth: cside, Runtime: rts[0],
		CheckpointInterval: o.CheckpointInterval,
		Metrics:            regs[0],
	})}
	sys.Replicas = append(sys.Replicas, servers[0])
	sys.PerReplicaMsgs = msgCounter(conns)
	sys.PerReplicaBusy = busyCounter(rts)
	sys.PerReplicaPkts = pktCounter(conns)
	sys.AuthOps = authCounter(nil, []*auth.ReplicaSide{cside})
	sys.Committed = servers[0].Ops
	sys.NewClient = func(id int) Invoker {
		ctr := sys.newTracer(o, fmt.Sprintf("client-%d", id), sys.clientReg)
		return traceInvoker(unreplicated.NewClient(
			tracing.WrapConn(join(fab, clientBase+transport.NodeID(id)), ctr),
			1, []byte(clientMaster), clientTuning(sys, o)), ctr)
	}
	sys.Close = func() {
		servers[0].Close()
		fab.Close()
	}
	lc := installLifecycle(sys, fab, o, mem, conns, rconns, trs, rts, regs)
	lc.persist = func(i int) []byte { return servers[i].Persist() }
	lc.stop = func(i int) { servers[i].Close() }
	lc.executed = func(i int) uint64 { return servers[i].Ops() }
	lc.boot = func(i int, restore []byte) {
		servers[i] = unreplicated.New(unreplicated.Config{
			Conn: rconns[i], App: o.AppFactory(i), ClientAuth: cside, Runtime: lc.rts[i],
			CheckpointInterval: o.CheckpointInterval,
			Metrics:            regs[i],
			Restore:            restore,
		})
		sys.Replicas[i] = servers[i]
	}
}
