package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"neobft/internal/chaos"
	"neobft/internal/simnet"
)

// ChaosConfig parameterizes one chaos-gauntlet run: a scenario from the
// library executed against one protocol under a fixed seed.
type ChaosConfig struct {
	Protocol Protocol
	Scenario string
	// Seed drives both the fault schedule and the simulated network, so
	// a failing run replays exactly from (scenario, protocol, seed).
	Seed int64
	// Short halves the load window (CI mode).
	Short bool
	// OutDir, when non-empty, receives replay artifacts: the schedule
	// text always, plus a flight-recorder trace dump when the safety
	// check fails.
	OutDir string
	// DataDir arms durable replica state for the run (Options.DataDir).
	// Empty defaults to a throwaway temp dir for the kill-recover
	// scenario — whose whole point is rebooting from disk — and to
	// in-memory state for every other scenario.
	DataDir string
}

// RunChaos executes one chaos scenario and reports whether the run was
// safe. The error return covers setup problems (unknown scenario); a
// safety violation is ok=false with a full report written to w.
func RunChaos(w io.Writer, c ChaosConfig) (ok bool, err error) {
	horizon := 3 * time.Second
	if c.Short {
		horizon = 1500 * time.Millisecond
	}
	sched, err := chaos.Scenario(c.Scenario, chaos.ScenarioConfig{
		Seed:     c.Seed,
		Horizon:  horizon,
		Replicas: FleetSize(c.Protocol, 0),
	})
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "=== chaos %s / %s ===\n%s", c.Scenario, c.Protocol, sched)

	dataDir := c.DataDir
	if dataDir == "" && c.Scenario == "kill-recover" {
		tmp, err := os.MkdirTemp("", "neobft-chaos-*")
		if err != nil {
			return false, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	if dataDir != "" {
		fmt.Fprintf(w, "  durable state under %s\n", dataDir)
	}
	sys := Build(Options{
		Protocol:           c.Protocol,
		CheckpointInterval: 32,
		ClientTimeout:      200 * time.Millisecond,
		Net:                simnet.Options{Seed: c.Seed},
		Chaos:              sched,
		DataDir:            dataDir,
		PersistEvery:       25 * time.Millisecond,
	})
	defer sys.Close()
	res := Run(sys, Load{
		Clients:   4,
		Warmup:    200 * time.Millisecond,
		Duration:  horizon,
		OpTimeout: 5 * time.Second,
	})
	if res.Chaos == nil {
		return false, fmt.Errorf("chaos schedule armed but produced no outcome")
	}

	rep := res.Chaos.Report
	for _, line := range rep.Applied {
		fmt.Fprintf(w, "  applied %s\n", line)
	}
	for _, rec := range rep.Recoveries {
		status := fmt.Sprintf("caught up in %v", rec.Latency.Round(time.Millisecond))
		if !rec.CaughtUp {
			status = "never caught up"
		}
		fmt.Fprintf(w, "  recovery replica %d: %s\n", rec.Replica, status)
	}
	check := res.Chaos.Check
	fmt.Fprintf(w, "  committed=%d acked-checked=%d divergence=%d net-seed=%d\n",
		res.Committed, check.AckedChecked, check.Divergence, res.Seed)

	safe := check.Ok()
	if safe {
		fmt.Fprintf(w, "  SAFE (schedule digest %s)\n", sched.Digest())
	} else {
		fmt.Fprintf(w, "  UNSAFE — %d violation(s):\n", len(check.Violations))
		for _, v := range check.Violations {
			fmt.Fprintf(w, "    %s\n", v)
		}
		fmt.Fprintf(w, "  replay: neobench -chaos %s -chaos-protocol %s -seed %d\n",
			c.Scenario, c.Protocol, c.Seed)
	}
	if c.OutDir != "" {
		if aerr := writeChaosArtifacts(c, sys, sched, &res, safe); aerr != nil {
			fmt.Fprintf(w, "  artifact write failed: %v\n", aerr)
		}
	}
	return safe, nil
}

// writeChaosArtifacts persists the replay fingerprint (always) and the
// flight-recorder dump (on failure) under cfg.OutDir.
func writeChaosArtifacts(c ChaosConfig, sys *System, sched *chaos.Schedule, res *RunResult, safe bool) error {
	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		return err
	}
	base := fmt.Sprintf("%s-%s-seed%d", c.Scenario, protocolSlug(c.Protocol), c.Seed)

	var b strings.Builder
	b.WriteString(sched.String())
	fmt.Fprintf(&b, "protocol=%s net-seed=%d safe=%v\n", c.Protocol, res.Seed, safe)
	if res.Chaos != nil {
		for _, v := range res.Chaos.Check.Violations {
			fmt.Fprintf(&b, "violation: %s\n", v)
		}
	}
	if err := os.WriteFile(filepath.Join(c.OutDir, base+".schedule.txt"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	if safe {
		return nil
	}
	f, err := os.Create(filepath.Join(c.OutDir, base+".trace.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	for i, reg := range sys.Metrics {
		if reg == nil {
			continue
		}
		if err := reg.Recorder().WriteJSONLines(f, fmt.Sprintf("node=%d", i)); err != nil {
			return err
		}
	}
	return nil
}

// protocolSlug flattens a protocol name into a file-name-safe token.
func protocolSlug(p Protocol) string {
	return strings.ToLower(strings.ReplaceAll(string(p), "-", ""))
}

// ChaosProtocol resolves a CLI protocol alias (neobft, pbft, minbft,
// zyzzyva, hotstuff, or any canonical Protocol name) to the protocol it
// names.
func ChaosProtocol(name string) (Protocol, error) {
	switch strings.ToLower(name) {
	case "neobft", "neo", "neohm", "neo-hm":
		return NeoHM, nil
	case "neopk", "neo-pk":
		return NeoPK, nil
	case "neobn", "neo-bn":
		return NeoBN, nil
	}
	for _, p := range AllProtocols {
		if strings.EqualFold(string(p), name) {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown protocol %q", name)
}
