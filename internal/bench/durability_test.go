package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"neobft/internal/chaos"
)

// The kill-recover chaos scenario against a durable Neo-HM fleet: a
// replica is SIGKILLed mid-load (no graceful persist), reboots from its
// data dir, and the SMR safety checker must still pass.
func TestChaosKillRecoverDurable(t *testing.T) {
	sched, err := chaos.Scenario("kill-recover", chaos.ScenarioConfig{
		Seed:     1,
		Horizon:  1500 * time.Millisecond,
		Replicas: 4,
		Settle:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := Build(Options{
		Protocol:           NeoHM,
		CheckpointInterval: 16,
		ClientTimeout:      200 * time.Millisecond,
		Chaos:              sched,
		DataDir:            t.TempDir(),
		PersistEvery:       10 * time.Millisecond,
	})
	defer sys.Close()
	res := Run(sys, Load{
		Clients:   4,
		Warmup:    200 * time.Millisecond,
		Duration:  1500 * time.Millisecond,
		OpTimeout: 5 * time.Second,
	})
	if res.Chaos == nil {
		t.Fatal("chaos armed but RunResult.Chaos is nil")
	}
	if !res.Chaos.Check.Ok() {
		t.Fatalf("safety violations after disk recovery:\n%v\napplied:\n%v",
			res.Chaos.Check.Violations, res.Chaos.Report.Applied)
	}
	rep := res.Chaos.Report
	if rep.Kills != 1 || rep.Restarts < 1 {
		t.Fatalf("kills=%d restarts=%d, want 1 and >=1\napplied:\n%v",
			rep.Kills, rep.Restarts, rep.Applied)
	}
	if res.Chaos.Check.AckedChecked == 0 {
		t.Fatal("no acknowledged operations were checked")
	}
	if !res.Config.Durable {
		t.Fatal("RunConfig.Durable = false for a data-dir-armed run")
	}
}

// Kill -9 a durable replica directly, then warm-restart it: the new
// incarnation must restore from the checkpoint the background persister
// wrote to disk — not from peers alone — and catch back up.
func TestKillRecoverRestoresFromDisk(t *testing.T) {
	sys := Build(Options{
		Protocol:           NeoHM,
		CheckpointInterval: 16,
		ClientTimeout:      200 * time.Millisecond,
		DataDir:            t.TempDir(),
		PersistEvery:       5 * time.Millisecond,
	})
	defer sys.Close()

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cl := sys.NewClient(c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := make([]byte, 32)
			for {
				select {
				case <-stopc:
					return
				default:
				}
				cl.Invoke(op, 2*time.Second)
			}
		}()
	}
	defer func() { close(stopc); wg.Wait() }()

	waitCommitted := func(target uint64, what string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if sys.Committed() >= target {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s (committed=%d, want >=%d)", what, sys.Committed(), target)
	}
	// Run far enough that checkpoints stabilize and the persister has
	// had many chances to journal one.
	waitCommitted(96, "initial load")

	if err := sys.Kill(3); err != nil {
		t.Fatal(err)
	}
	if sys.Alive(3) {
		t.Fatal("replica 3 still alive after kill")
	}
	waitCommitted(sys.Committed()+32, "progress with replica down")

	if err := sys.Restart(3, false); err != nil {
		t.Fatal(err)
	}
	rec := sys.stores[3].Recovered()
	if rec.Checkpoint == nil {
		t.Fatal("warm restart after kill recovered no checkpoint from disk")
	}
	if rec.Slot == 0 {
		t.Fatal("recovered checkpoint has slot 0")
	}
	target := sys.Committed()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if sys.Alive(3) && sys.ExecutedAt(3) >= target {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica 3 did not catch up after disk recovery: executed=%d target=%d",
		sys.ExecutedAt(3), target)
}

// RunChaos with kill-recover and no DataDir must arm a throwaway data
// dir on its own (the scenario is meaningless in memory mode).
func TestRunChaosKillRecoverDefaultsDurable(t *testing.T) {
	var out bytes.Buffer
	ok, err := RunChaos(&out, ChaosConfig{
		Protocol: PBFT,
		Scenario: "kill-recover",
		Seed:     3,
		Short:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("kill-recover run unsafe:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "durable state under") {
		t.Fatalf("run did not arm durable state:\n%s", out.String())
	}
}
