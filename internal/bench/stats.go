// Package bench is the experiment harness: it builds any of the paper's
// nine systems (NeoBFT in three flavours, four baselines, Zyzzyva with a
// faulty replica, and the unreplicated server) on the simulated network,
// drives closed-loop client load against them, and regenerates every
// table and figure of the paper's evaluation (§6).
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// LatencySummary summarizes a latency sample set.
type LatencySummary struct {
	Count  int
	Median time.Duration
	P99    time.Duration
	P999   time.Duration
	Mean   time.Duration
}

// Summarize computes percentiles over (unsorted) samples.
func Summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	return LatencySummary{
		Count:  len(sorted),
		Median: pct(sorted, 50),
		P99:    pct(sorted, 99),
		P999:   pct(sorted, 99.9),
		Mean:   sum / time.Duration(len(sorted)),
	}
}

// pct is the ceil nearest-rank percentile: the smallest sample such that
// at least p% of the set is <= it. Truncating the rank instead of
// rounding it up (the previous behaviour) returned the sample one rank
// too low whenever p/100*n is fractional — e.g. p99 of 10 samples gave
// rank 9 instead of rank 10.
func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	// The epsilon keeps float noise (0.999*1000 = 999.0000000000001)
	// from pushing an exact rank up a slot.
	idx := int(math.Ceil(p/100*float64(len(sorted))-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CDF returns (latency, cumulative fraction) points suitable for
// plotting, downsampled to at most `points` entries.
func CDF(samples []time.Duration, points int) [][2]float64 {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if points <= 0 || points > len(sorted) {
		points = len(sorted)
	}
	out := make([][2]float64, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * len(sorted) / points
		if idx > len(sorted) {
			idx = len(sorted)
		}
		out = append(out, [2]float64{
			float64(sorted[idx-1]) / float64(time.Microsecond),
			float64(idx) / float64(len(sorted)),
		})
	}
	return out
}

// Table renders rows as an aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Dur formats a duration in microseconds for table cells.
func Dur(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
}

// Tput formats ops/sec in thousands.
func Tput(opsPerSec float64) string {
	return fmt.Sprintf("%.1fK", opsPerSec/1000)
}
