package bench

import (
	"os"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// watermarked is implemented by replica handles exposing the shared
// seqlog window (all six protocols after the bounded-memory refactor).
type watermarked interface {
	LowWatermark() uint64
	HighWatermark() uint64
}

// TestSoakMemoryBoundedLog drives at least 200k committed operations
// through NeoBFT and PBFT with a small checkpoint interval and asserts
// two invariants of the bounded-memory log:
//
//  1. every replica's retained window (high − low watermark) never
//     exceeds two checkpoint intervals once checkpoints are flowing, and
//  2. the process heap stays under a fixed ceiling — the ground truth
//     that truncation actually releases slot memory.
//
// Gated behind NEOBFT_SOAK=1: it runs for minutes, not milliseconds.
func TestSoakMemoryBoundedLog(t *testing.T) {
	if os.Getenv("NEOBFT_SOAK") == "" {
		t.Skip("set NEOBFT_SOAK=1 to run the memory-bounded soak")
	}
	const (
		targetOps = 200_000
		interval  = 64
		clients   = 16
		heapCeil  = uint64(1) << 30 // 1 GiB: orders beyond a bounded window's need
	)
	for _, p := range []Protocol{NeoHM, PBFT} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			sys := Build(Options{Protocol: p, CheckpointInterval: interval})
			defer sys.Close()

			var stop atomic.Bool
			var errs atomic.Uint64
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				cl := sys.NewClient(i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						if _, err := cl.Invoke([]byte("soak-op"), 10*time.Second); err != nil {
							errs.Add(1)
						}
					}
				}()
			}

			// Sample the window and heap while the load runs.
			var maxWindow, maxHeap uint64
			deadline := time.Now().Add(10 * time.Minute)
			for sys.Committed() < targetOps {
				if time.Now().After(deadline) {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("soak stalled: %d/%d ops committed (errors=%d)",
						sys.Committed(), targetOps, errs.Load())
				}
				time.Sleep(100 * time.Millisecond)
				for i, h := range sys.Replicas {
					r, ok := h.(watermarked)
					if !ok {
						t.Fatalf("replica %d (%T) exposes no watermarks", i, h)
					}
					low, high := r.LowWatermark(), r.HighWatermark()
					if high-low > maxWindow {
						maxWindow = high - low
					}
					if low > 0 && high-low > 2*interval {
						stop.Store(true)
						wg.Wait()
						t.Fatalf("replica %d window [%d,%d] = %d slots exceeds two intervals (%d)",
							i, low, high, high-low, 2*interval)
					}
				}
				var ms goruntime.MemStats
				goruntime.ReadMemStats(&ms)
				if ms.HeapInuse > maxHeap {
					maxHeap = ms.HeapInuse
				}
				if ms.HeapInuse > heapCeil {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("heap in use %d MiB exceeds ceiling %d MiB at %d ops",
						ms.HeapInuse>>20, heapCeil>>20, sys.Committed())
				}
			}
			stop.Store(true)
			wg.Wait()

			committed := sys.Committed()
			// Post-run: truncation must have happened (the low watermark
			// advanced with the run, leaving at most two intervals live).
			for i, h := range sys.Replicas {
				r := h.(watermarked)
				low, high := r.LowWatermark(), r.HighWatermark()
				if low == 0 {
					t.Fatalf("replica %d never truncated (high=%d)", i, high)
				}
				if high-low > 2*interval {
					t.Fatalf("replica %d final window [%d,%d] exceeds two intervals", i, low, high)
				}
			}
			goruntime.GC()
			var ms goruntime.MemStats
			goruntime.ReadMemStats(&ms)
			t.Logf("%s: %d ops committed, errors=%d, max window %d slots, peak heap %d MiB, settled heap %d MiB",
				p, committed, errs.Load(), maxWindow, maxHeap>>20, ms.HeapInuse>>20)
		})
	}
}
