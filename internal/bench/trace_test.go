package bench

import (
	"testing"
	"time"

	"neobft/internal/tracing"
)

// runTraced drives a short traced load and merges the resulting spans.
func runTraced(t *testing.T, p Protocol, transport string) (*RunResult, *tracing.Report) {
	t.Helper()
	sys := Build(Options{Protocol: p, Transport: transport, TraceRate: 1})
	defer sys.Close()
	res := Run(sys, Load{Clients: 2, Warmup: 100 * time.Millisecond, Duration: 300 * time.Millisecond})
	if len(res.Spans) == 0 {
		t.Fatalf("%s: traced run recorded no spans", p)
	}
	return &res, tracing.BuildTimelines(res.Spans)
}

// TestTracedUDPPhaseBreakdown is the acceptance check for the tracing
// tentpole: a traced run over real UDP loopback sockets must merge into
// five-phase timelines whose phases account for the end-to-end latency
// (within 10%), for both NeoBFT and PBFT.
func TestTracedUDPPhaseBreakdown(t *testing.T) {
	for _, p := range []Protocol{NeoHM, PBFT} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, rep := runTraced(t, p, "udp")
			if len(rep.Timelines) == 0 {
				t.Fatalf("no complete timelines from %d spans (incomplete=%d)",
					len(res.Spans), rep.Incomplete)
			}
			var attributed, stitched int
			for i := range rep.Timelines {
				tl := &rep.Timelines[i]
				var sum int64
				for _, ph := range tl.Phases {
					sum += ph
				}
				if tl.E2E <= 0 {
					t.Fatalf("trace %x: non-positive e2e %d", tl.Trace, tl.E2E)
				}
				diff := sum - tl.E2E
				if diff < 0 {
					diff = -diff
				}
				if diff*10 <= tl.E2E {
					attributed++
				}
				// Cross-node stitching: replica- or sequencer-side work
				// (order/verify/apply) visible inside the client's window.
				if tl.Phases[tracing.AttrOrder]+tl.Phases[tracing.AttrVerify]+tl.Phases[tracing.AttrApply] > 0 {
					stitched++
				}
			}
			if attributed != len(rep.Timelines) {
				t.Errorf("%d/%d timelines attribute phases within 10%% of e2e",
					attributed, len(rep.Timelines))
			}
			if stitched == 0 {
				t.Errorf("no timeline shows cross-node order/verify/apply work (%d timelines)",
					len(rep.Timelines))
			}
			// The phase histograms must have flowed into the merged
			// metric snapshot alongside the per-span attribution.
			var sawE2E bool
			for _, pt := range res.Metrics {
				if pt.Name == "phase_e2e_ns_count" && pt.Value > 0 {
					sawE2E = true
				}
			}
			if !sawE2E {
				t.Error("phase_e2e_ns histogram missing from RunResult.Metrics")
			}
		})
	}
}

// TestTracedRestartKeepsTracing crashes and restarts a traced replica:
// the replacement runtime must keep peeling envelopes (a regression here
// would surface as enveloped packets dropped as garbage after restart).
func TestTracedRestartKeepsTracing(t *testing.T) {
	sys := Build(Options{Protocol: PBFT, TraceRate: 1})
	defer sys.Close()
	res := Run(sys, Load{Clients: 2, Warmup: 50 * time.Millisecond, Duration: 150 * time.Millisecond})
	if res.Committed == 0 {
		t.Fatal("no ops committed before restart")
	}
	if err := sys.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := sys.Restart(3, false); err != nil {
		t.Fatal(err)
	}
	// A fresh client (client IDs join the fabric once, so Run cannot be
	// repeated on one system) must still commit traced ops through the
	// restarted replica's wrapped conn.
	cl := sys.NewClient(99)
	op := make([]byte, 64)
	for i := 0; i < 20; i++ {
		if _, err := cl.Invoke(op, 5*time.Second); err != nil {
			t.Fatalf("invoke %d after restart: %v", i, err)
		}
	}
	rep := tracing.BuildTimelines(sys.DrainSpans())
	var after int
	for i := range rep.Timelines {
		if rep.Timelines[i].Client == "client-99" {
			after++
		}
	}
	if after == 0 {
		t.Fatalf("no post-restart timelines (total %d)", len(rep.Timelines))
	}
}

// TestTracingOverheadSmoke is the paired-run overhead check: 1% sampling
// must cost less than 3% of untraced projected throughput. Shared-CPU
// noise dwarfs the real cost on a bad scheduler day, so the pair is
// retried a few times and the best-behaved pair decides.
func TestTracingOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paired timing run")
	}
	load := Load{Clients: 8, Warmup: 100 * time.Millisecond, Duration: 400 * time.Millisecond}
	measure := func(rate float64) float64 {
		sys := Build(Options{Protocol: NeoHM, TraceRate: rate})
		defer sys.Close()
		return Run(sys, load).ProjectedTput
	}
	const tries = 3
	var lastOff, lastOn float64
	for i := 0; i < tries; i++ {
		lastOff, lastOn = measure(0), measure(0.01)
		if lastOff > 0 && lastOn >= 0.97*lastOff {
			return
		}
	}
	t.Errorf("1%% sampling costs more than 3%%: off=%.0f ops/s traced=%.0f ops/s (best of %d tries)",
		lastOff, lastOn, tries)
}
