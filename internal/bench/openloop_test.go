package bench

import (
	"testing"
	"time"
)

// TestOpenLoopSmoke drives a pipelined PBFT system at a fixed offered
// rate and checks the run result carries the open-loop provenance and
// the client pipelining metrics.
func TestOpenLoopSmoke(t *testing.T) {
	sys := Build(Options{Protocol: PBFT, BatchSize: 16, BatchAdaptive: true, ClientWindow: 4})
	defer sys.Close()
	res := RunOpen(sys, OpenLoad{
		Rate: 2000, Clients: 2,
		Warmup: 50 * time.Millisecond, Duration: 300 * time.Millisecond,
	})
	if res.Throughput == 0 {
		t.Fatalf("zero throughput (errors=%d)", res.Errors)
	}
	if res.Errors > 0 {
		t.Fatalf("open-loop run had %d errors", res.Errors)
	}
	c := res.Config
	if c.Mode != "open" || c.Rate != 2000 || c.Clients != 2 || c.Window != 4 {
		t.Fatalf("run config = %+v", c)
	}
	if c.BatchMax != 16 || !c.BatchAdaptive {
		t.Fatalf("batch config not recorded: %+v", c)
	}
	if len(res.Latencies) == 0 {
		t.Fatal("no latencies recorded")
	}
	// The pipelining gauge/counters must appear in the merged snapshot.
	flatValue(t, res.Metrics, "client_inflight")
	flatValue(t, res.Metrics, "client_retransmits_total")
	s := Summarize(res.Latencies)
	t.Logf("open 2000 ops/s offered: %.0f achieved, median %v p99 %v", res.Throughput, s.Median, s.P99)
}

// TestOpenLoopLatencyIncludesQueueing checks the coordinated-omission
// guard: when the offered rate far exceeds capacity, measured latency
// must grow with queueing delay rather than stay flat.
func TestOpenLoopLatencyIncludesQueueing(t *testing.T) {
	run := func(rate float64) time.Duration {
		sys := Build(Options{Protocol: PBFT})
		defer sys.Close()
		res := RunOpen(sys, OpenLoad{
			Rate: rate, Clients: 2,
			Warmup: 50 * time.Millisecond, Duration: 250 * time.Millisecond,
		})
		return Summarize(res.Latencies).P99
	}
	light := run(500)
	// Two window-1 PBFT clients sustain a few thousand ops/s at best;
	// a 50k offered rate builds a backlog whose waiting time must show
	// up as scheduled-arrival latency.
	heavy := run(50_000)
	if heavy < 3*light {
		t.Fatalf("overload p99 %v not measurably above light-load p99 %v; queueing delay dropped", heavy, light)
	}
}

// TestSaturationSweepSmoke runs the sweep helper over two rates and
// checks the points come back in order with sane values.
func TestSaturationSweepSmoke(t *testing.T) {
	pts := SaturationPoints(t)
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, pt := range pts {
		if pt.Throughput <= 0 {
			t.Fatalf("point %d: zero throughput", i)
		}
		if pt.Median <= 0 {
			t.Fatalf("point %d: zero median", i)
		}
	}
	if pts[0].Rate >= pts[1].Rate {
		t.Fatal("rates not ascending")
	}
}

// SaturationPoints is a test helper running a tiny two-rate sweep.
func SaturationPoints(t *testing.T) []SaturationPoint {
	t.Helper()
	return SaturationSweep(func() *System {
		return Build(Options{Protocol: PBFT, BatchSize: 32, BatchAdaptive: true, ClientWindow: 4})
	}, []float64{1000, 3000}, OpenLoad{
		Clients: 2, Warmup: 50 * time.Millisecond, Duration: 200 * time.Millisecond,
	})
}

// TestAdaptiveBatchingBeatsSeed is the acceptance gate for the unified
// request path: adaptive batching with a deeper cap plus client
// pipelining must beat the seed configuration (fixed BatchSize=8,
// window=1, closed loop) on PBFT throughput by a clear margin.
func TestAdaptiveBatchingBeatsSeed(t *testing.T) {
	measure := func(o Options) float64 {
		o.Protocol = PBFT
		sys := Build(o)
		defer sys.Close()
		res := Run(sys, Load{Clients: 16, Warmup: 100 * time.Millisecond, Duration: 400 * time.Millisecond})
		return res.Throughput
	}
	seed := Options{BatchSize: 8}
	tuned := Options{BatchSize: 64, BatchLinger: 200 * time.Microsecond, BatchAdaptive: true, ClientWindow: 8}

	// One retry damps scheduler noise on loaded CI machines.
	for attempt := 0; ; attempt++ {
		base := measure(seed)
		fast := measure(tuned)
		t.Logf("attempt %d: seed %.0f ops/s, tuned %.0f ops/s (%.2fx)", attempt, base, fast, fast/base)
		if fast >= 1.15*base {
			return
		}
		if attempt >= 1 {
			t.Fatalf("tuned path %.0f ops/s did not beat seed %.0f ops/s by 1.15x", fast, base)
		}
	}
}
