package bench

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sync"
	"time"

	"neobft/internal/chaos"
	"neobft/internal/metrics"
	"neobft/internal/runtime"
	"neobft/internal/store"
	"neobft/internal/tracing"
	"neobft/internal/transport"
)

// lifecycle implements crash–restart node management for a built system.
// The protocol-specific pieces — persisting a checkpoint, stopping a
// replica, booting a replacement — are closures the build functions fill
// in; everything else (network membership, conn swapping, runtime
// replacement, busy-time accounting across incarnations) is shared.
type lifecycle struct {
	mu  sync.Mutex
	fab transport.Fabric
	mem []transport.NodeID
	// conns are the swappable counting conns; rconns the conns replicas
	// and runtimes actually use (the counting conn, wrapped for tracing
	// when the system is traced — the wrapper survives restarts because
	// the counting conn underneath it is what swaps).
	conns    []*countingConn
	rconns   []transport.Conn
	trs      []*tracing.Tracer
	rts      []*runtime.Runtime
	regs     []*metrics.Registry
	workers  int
	alive    []bool
	blobs    [][]byte
	busyBase []time.Duration

	// Durable mode (Options.DataDir): stores holds each replica's
	// on-disk store (the slice is shared with System.stores, so swaps
	// here are visible to the durable AppFactory wrapper at boot
	// time), and restart blobs come from disk recovery instead of
	// lc.blobs. ckptHash dedups the background persister's captures.
	stores      []*store.Store
	dataDir     string
	fsyncLinger time.Duration
	ckptHash    [][32]byte
	persistStop chan struct{}
	persistDone chan struct{}

	// persist returns replica i's restart blob (nil if it has no stable
	// checkpoint yet — the restart is then effectively cold).
	persist func(i int) []byte
	// stop closes replica i (and with it, its runtime).
	stop func(i int)
	// boot constructs a replacement replica i over lc.conns[i]/lc.rts[i],
	// restoring from blob (nil ⇒ cold start). Called with lc.mu held.
	boot func(i int, restore []byte)
	// executed reports ops executed at replica i. Called with lc.mu held.
	executed func(i int) uint64
	// progress reports replica i's absolute log progress for catch-up
	// measurement — unlike executed it must not reset across
	// incarnations (a restored replica resumes at its checkpoint slot).
	// Nil means executed already has that property. Called with lc.mu
	// held.
	progress func(i int) uint64
}

// installLifecycle wires a lifecycle into the system, overriding the
// accessors that must stay correct across replica replacement. Build
// functions call it last, after the base accessors are set.
func installLifecycle(sys *System, fab transport.Fabric, o Options,
	mem []transport.NodeID, conns []*countingConn, rconns []transport.Conn,
	trs []*tracing.Tracer, rts []*runtime.Runtime,
	regs []*metrics.Registry) *lifecycle {
	n := len(mem)
	lc := &lifecycle{
		fab: fab, mem: mem, conns: conns, rconns: rconns, trs: trs, rts: rts, regs: regs,
		workers:  o.VerifyWorkers,
		alive:    make([]bool, n),
		blobs:    make([][]byte, n),
		busyBase: make([]time.Duration, n),
	}
	for i := range lc.alive {
		lc.alive[i] = true
	}
	sys.NumReplicas = n
	sys.lc = lc
	sys.Crash = lc.Crash
	sys.Kill = lc.Kill
	sys.Restart = lc.Restart
	sys.Alive = lc.Alive
	sys.SkewClock = lc.SkewClock
	sys.ExecutedAt = lc.Progress
	sys.ReplicaID = func(i int) transport.NodeID { return mem[i] }
	sys.PerReplicaBusy = lc.busy
	sys.Committed = func() uint64 { return lc.Executed(0) }
	return lc
}

// Crash persists replica i's stable checkpoint, stops it, and detaches
// it from the network.
func (lc *lifecycle) Crash(i int) error { return lc.halt(i, true) }

// Kill stops replica i without the graceful final persist — the
// in-process stand-in for SIGKILL. In durable mode the disk keeps
// whatever the background persister last wrote; in memory mode the
// old blob (from a previous crash, possibly stale) is discarded, so a
// warm restart behaves like a cold one.
func (lc *lifecycle) Kill(i int) error { return lc.halt(i, false) }

func (lc *lifecycle) halt(i int, graceful bool) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) {
		return fmt.Errorf("bench: no replica %d", i)
	}
	if !lc.alive[i] {
		return fmt.Errorf("bench: replica %d already down", i)
	}
	if graceful {
		blob := lc.persist(i)
		if lc.stores != nil {
			if blob != nil {
				lc.stores[i].AppendCheckpoint(lc.progressOf(i), blob)
			}
		} else {
			lc.blobs[i] = blob
		}
	} else if lc.stores == nil {
		lc.blobs[i] = nil
	}
	lc.stop(i)
	if lc.stores != nil {
		// Process death: the store's file handles go away. Close is
		// the simulation's stand-in — the WAL bytes were written
		// (write(2) survives SIGKILL); only the final graceful
		// capture above is what a kill loses.
		lc.stores[i].Close()
	}
	lc.busyBase[i] += lc.rts[i].Busy()
	lc.conns[i].Close()
	lc.alive[i] = false
	return nil
}

// Restart rejoins the network under the same node ID and boots a
// replacement replica: warm from its persisted checkpoint — read back
// from the replica's data dir in durable mode, from the in-memory
// crash blob otherwise — or cold (state wiped, recovery from peers).
func (lc *lifecycle) Restart(i int, cold bool) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) {
		return fmt.Errorf("bench: no replica %d", i)
	}
	if lc.alive[i] {
		return fmt.Errorf("bench: replica %d already running", i)
	}
	var restore []byte
	if lc.stores != nil {
		dir := replicaDir(lc.dataDir, i)
		if cold {
			if err := os.RemoveAll(dir); err != nil {
				return fmt.Errorf("bench: wipe replica %d data dir: %w", i, err)
			}
		}
		st, err := store.Open(dir, store.Options{
			FsyncLinger: lc.fsyncLinger,
			Metrics:     lc.regs[i],
			Tracer:      lc.trs[i],
		})
		if err != nil {
			return fmt.Errorf("bench: reopen store for replica %d: %w", i, err)
		}
		lc.stores[i] = st
		lc.ckptHash[i] = [32]byte{}
		restore = st.Recovered().Checkpoint
	} else {
		restore = lc.blobs[i]
		if cold {
			restore = nil
		}
	}
	conn, err := lc.fab.Join(lc.mem[i])
	if err != nil {
		return fmt.Errorf("bench: rejoin replica %d: %w", i, err)
	}
	lc.conns[i].swap(conn)
	// Same registry and tracer across incarnations: counters keep
	// accumulating and the runtime's Func gauges are re-pointed at the
	// new instance.
	lc.rts[i] = newRuntime(lc.rconns[i], lc.workers, lc.regs[i], lc.trs[i])
	lc.boot(i, restore)
	lc.alive[i] = true
	return nil
}

// progressOf is Progress without the aliveness gate, for callers that
// already hold lc.mu mid-transition.
func (lc *lifecycle) progressOf(i int) uint64 {
	if lc.progress != nil {
		return lc.progress(i)
	}
	return lc.executed(i)
}

// armStores switches the lifecycle into durable mode and starts the
// background persister. Called by Build after the protocol builder
// has installed the persist/stop/boot closures.
func (lc *lifecycle) armStores(stores []*store.Store, o Options) {
	every := o.PersistEvery
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	lc.mu.Lock()
	lc.stores = stores
	lc.dataDir = o.DataDir
	lc.fsyncLinger = o.FsyncLinger
	lc.ckptHash = make([][32]byte, len(stores))
	lc.persistStop = make(chan struct{})
	lc.persistDone = make(chan struct{})
	for i, st := range stores {
		st.SetTracer(lc.trs[i])
	}
	lc.mu.Unlock()
	go lc.persistLoop(every)
}

// persistLoop periodically captures each live replica's Persist()
// blob into its store as a checkpoint record. The capture runs under
// lc.mu (it reads protocol state the same way Crash does); the
// group-commit append happens outside it so a slow fsync never blocks
// lifecycle transitions. Identical consecutive blobs are deduped, so
// the WAL only grows when the stable watermark advances.
func (lc *lifecycle) persistLoop(every time.Duration) {
	defer close(lc.persistDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-lc.persistStop:
			return
		case <-tick.C:
		}
		for i := range lc.alive {
			lc.mu.Lock()
			if !lc.alive[i] {
				lc.mu.Unlock()
				continue
			}
			blob := lc.persist(i)
			if blob == nil {
				lc.mu.Unlock()
				continue
			}
			h := sha256.Sum256(blob)
			if h == lc.ckptHash[i] {
				lc.mu.Unlock()
				continue
			}
			lc.ckptHash[i] = h
			slot := lc.progressOf(i)
			st := lc.stores[i]
			lc.mu.Unlock()
			// The store may race a concurrent kill and be closed —
			// exactly what a real process losing a write race sees.
			st.AppendCheckpoint(slot, blob)
		}
	}
}

// stopPersister halts the background persister (no-op in memory mode).
func (lc *lifecycle) stopPersister() {
	lc.mu.Lock()
	stop := lc.persistStop
	lc.mu.Unlock()
	if stop == nil {
		return
	}
	select {
	case <-stop:
	default:
		close(stop)
	}
	<-lc.persistDone
}

// Alive reports whether replica i is running.
func (lc *lifecycle) Alive(i int) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return i >= 0 && i < len(lc.alive) && lc.alive[i]
}

// SkewClock multiplies replica i's timer durations by factor.
func (lc *lifecycle) SkewClock(i int, factor float64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i >= 0 && i < len(lc.rts) && lc.alive[i] {
		lc.rts[i].SetTimerScale(factor)
	}
}

// Executed reports ops executed at replica i (0 while it is down).
func (lc *lifecycle) Executed(i int) uint64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) || !lc.alive[i] {
		return 0
	}
	return lc.executed(i)
}

// Progress reports replica i's restart-stable log progress (0 while it
// is down).
func (lc *lifecycle) Progress(i int) uint64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) || !lc.alive[i] {
		return 0
	}
	if lc.progress != nil {
		return lc.progress(i)
	}
	return lc.executed(i)
}

// busy reports per-replica handler busy time summed across incarnations.
func (lc *lifecycle) busy() []time.Duration {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]time.Duration, len(lc.rts))
	for i, rt := range lc.rts {
		out[i] = lc.busyBase[i] + rt.Busy()
	}
	return out
}

// fleet adapts the system to the chaos executor's fault surface.
func (sys *System) fleet() chaos.Fleet {
	return chaos.Fleet{
		Net:            sys.Net,
		Replicas:       sys.NumReplicas,
		ReplicaID:      sys.ReplicaID,
		Crash:          sys.Crash,
		Kill:           sys.Kill,
		Restart:        sys.Restart,
		Alive:          sys.Alive,
		SkewClock:      sys.SkewClock,
		CrashSequencer: sys.CrashSequencer,
		Executed:       sys.ExecutedAt,
		Tracer:         sys.chaosTr,
	}
}
