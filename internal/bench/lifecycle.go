package bench

import (
	"fmt"
	"sync"
	"time"

	"neobft/internal/chaos"
	"neobft/internal/metrics"
	"neobft/internal/runtime"
	"neobft/internal/tracing"
	"neobft/internal/transport"
)

// lifecycle implements crash–restart node management for a built system.
// The protocol-specific pieces — persisting a checkpoint, stopping a
// replica, booting a replacement — are closures the build functions fill
// in; everything else (network membership, conn swapping, runtime
// replacement, busy-time accounting across incarnations) is shared.
type lifecycle struct {
	mu  sync.Mutex
	fab transport.Fabric
	mem []transport.NodeID
	// conns are the swappable counting conns; rconns the conns replicas
	// and runtimes actually use (the counting conn, wrapped for tracing
	// when the system is traced — the wrapper survives restarts because
	// the counting conn underneath it is what swaps).
	conns    []*countingConn
	rconns   []transport.Conn
	trs      []*tracing.Tracer
	rts      []*runtime.Runtime
	regs     []*metrics.Registry
	workers  int
	alive    []bool
	blobs    [][]byte
	busyBase []time.Duration

	// persist returns replica i's restart blob (nil if it has no stable
	// checkpoint yet — the restart is then effectively cold).
	persist func(i int) []byte
	// stop closes replica i (and with it, its runtime).
	stop func(i int)
	// boot constructs a replacement replica i over lc.conns[i]/lc.rts[i],
	// restoring from blob (nil ⇒ cold start). Called with lc.mu held.
	boot func(i int, restore []byte)
	// executed reports ops executed at replica i. Called with lc.mu held.
	executed func(i int) uint64
	// progress reports replica i's absolute log progress for catch-up
	// measurement — unlike executed it must not reset across
	// incarnations (a restored replica resumes at its checkpoint slot).
	// Nil means executed already has that property. Called with lc.mu
	// held.
	progress func(i int) uint64
}

// installLifecycle wires a lifecycle into the system, overriding the
// accessors that must stay correct across replica replacement. Build
// functions call it last, after the base accessors are set.
func installLifecycle(sys *System, fab transport.Fabric, o Options,
	mem []transport.NodeID, conns []*countingConn, rconns []transport.Conn,
	trs []*tracing.Tracer, rts []*runtime.Runtime,
	regs []*metrics.Registry) *lifecycle {
	n := len(mem)
	lc := &lifecycle{
		fab: fab, mem: mem, conns: conns, rconns: rconns, trs: trs, rts: rts, regs: regs,
		workers:  o.VerifyWorkers,
		alive:    make([]bool, n),
		blobs:    make([][]byte, n),
		busyBase: make([]time.Duration, n),
	}
	for i := range lc.alive {
		lc.alive[i] = true
	}
	sys.NumReplicas = n
	sys.Crash = lc.Crash
	sys.Restart = lc.Restart
	sys.Alive = lc.Alive
	sys.SkewClock = lc.SkewClock
	sys.ExecutedAt = lc.Progress
	sys.ReplicaID = func(i int) transport.NodeID { return mem[i] }
	sys.PerReplicaBusy = lc.busy
	sys.Committed = func() uint64 { return lc.Executed(0) }
	return lc
}

// Crash persists replica i's stable checkpoint, stops it, and detaches
// it from the network.
func (lc *lifecycle) Crash(i int) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) {
		return fmt.Errorf("bench: no replica %d", i)
	}
	if !lc.alive[i] {
		return fmt.Errorf("bench: replica %d already down", i)
	}
	lc.blobs[i] = lc.persist(i)
	lc.stop(i)
	lc.busyBase[i] += lc.rts[i].Busy()
	lc.conns[i].Close()
	lc.alive[i] = false
	return nil
}

// Restart rejoins the network under the same node ID and boots a
// replacement replica: warm from the blob its crash persisted, or cold
// (blob discarded — recovery must come from peers).
func (lc *lifecycle) Restart(i int, cold bool) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) {
		return fmt.Errorf("bench: no replica %d", i)
	}
	if lc.alive[i] {
		return fmt.Errorf("bench: replica %d already running", i)
	}
	conn, err := lc.fab.Join(lc.mem[i])
	if err != nil {
		return fmt.Errorf("bench: rejoin replica %d: %w", i, err)
	}
	lc.conns[i].swap(conn)
	// Same registry and tracer across incarnations: counters keep
	// accumulating and the runtime's Func gauges are re-pointed at the
	// new instance.
	lc.rts[i] = newRuntime(lc.rconns[i], lc.workers, lc.regs[i], lc.trs[i])
	restore := lc.blobs[i]
	if cold {
		restore = nil
	}
	lc.boot(i, restore)
	lc.alive[i] = true
	return nil
}

// Alive reports whether replica i is running.
func (lc *lifecycle) Alive(i int) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return i >= 0 && i < len(lc.alive) && lc.alive[i]
}

// SkewClock multiplies replica i's timer durations by factor.
func (lc *lifecycle) SkewClock(i int, factor float64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i >= 0 && i < len(lc.rts) && lc.alive[i] {
		lc.rts[i].SetTimerScale(factor)
	}
}

// Executed reports ops executed at replica i (0 while it is down).
func (lc *lifecycle) Executed(i int) uint64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) || !lc.alive[i] {
		return 0
	}
	return lc.executed(i)
}

// Progress reports replica i's restart-stable log progress (0 while it
// is down).
func (lc *lifecycle) Progress(i int) uint64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if i < 0 || i >= len(lc.alive) || !lc.alive[i] {
		return 0
	}
	if lc.progress != nil {
		return lc.progress(i)
	}
	return lc.executed(i)
}

// busy reports per-replica handler busy time summed across incarnations.
func (lc *lifecycle) busy() []time.Duration {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]time.Duration, len(lc.rts))
	for i, rt := range lc.rts {
		out[i] = lc.busyBase[i] + rt.Busy()
	}
	return out
}

// fleet adapts the system to the chaos executor's fault surface.
func (sys *System) fleet() chaos.Fleet {
	return chaos.Fleet{
		Net:            sys.Net,
		Replicas:       sys.NumReplicas,
		ReplicaID:      sys.ReplicaID,
		Crash:          sys.Crash,
		Restart:        sys.Restart,
		Alive:          sys.Alive,
		SkewClock:      sys.SkewClock,
		CrashSequencer: sys.CrashSequencer,
		Executed:       sys.ExecutedAt,
		Tracer:         sys.chaosTr,
	}
}
