package bench

import (
	"strings"
	"testing"
)

// TestExperimentsShort runs every figure/table generator in short mode,
// checking each produces a plausible report. This is the end-to-end test
// of the entire reproduction pipeline.
func TestExperimentsShort(t *testing.T) {
	c := ExpConfig{Short: true}
	for name, fn := range map[string]func(*strings.Builder){
		"fig4":   func(b *strings.Builder) { Fig4(b, c) },
		"fig5":   func(b *strings.Builder) { Fig5(b, c) },
		"fig6":   func(b *strings.Builder) { Fig6(b, c) },
		"table2": func(b *strings.Builder) { Table2(b, c) },
		"table3": func(b *strings.Builder) { Table3(b, c) },
	} {
		var b strings.Builder
		fn(&b)
		if len(b.String()) < 100 {
			t.Fatalf("%s produced no meaningful output:\n%s", name, b.String())
		}
		t.Logf("%s:\n%s", name, b.String())
	}
}

func TestFig9Short(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment")
	}
	var b strings.Builder
	Fig9(&b, ExpConfig{Short: true})
	t.Logf("\n%s", b.String())
	if !strings.Contains(b.String(), "gap agreements") {
		t.Fatal("missing gap agreement column")
	}
}

func TestTable1Short(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment")
	}
	var b strings.Builder
	Table1(&b, ExpConfig{Short: true})
	t.Logf("\n%s", b.String())
	out := b.String()
	if !strings.Contains(out, "Neo-HM") || !strings.Contains(out, "PBFT") {
		t.Fatal("table 1 incomplete")
	}
}
