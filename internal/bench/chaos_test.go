package bench

import (
	"sync"
	"testing"
	"time"

	"neobft/internal/chaos"
	"neobft/internal/neobft"
	"neobft/internal/transport"
)

// A full chaos run: the crash-restart scenario against Neo-HM, with the
// safety checker verifying histories and acks afterwards.
func TestChaosCrashRestartNeoBFT(t *testing.T) {
	sched, err := chaos.Scenario("crash-restart", chaos.ScenarioConfig{
		Seed:     1,
		Horizon:  1500 * time.Millisecond,
		Replicas: 4,
		Settle:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := Build(Options{
		Protocol:           NeoHM,
		CheckpointInterval: 32,
		ClientTimeout:      200 * time.Millisecond,
		Chaos:              sched,
	})
	defer sys.Close()
	res := Run(sys, Load{
		Clients:   4,
		Warmup:    200 * time.Millisecond,
		Duration:  1500 * time.Millisecond,
		OpTimeout: 5 * time.Second,
	})
	if res.Chaos == nil {
		t.Fatal("chaos armed but RunResult.Chaos is nil")
	}
	if !res.Chaos.Check.Ok() {
		t.Fatalf("safety violations:\n%v\napplied:\n%v",
			res.Chaos.Check.Violations, res.Chaos.Report.Applied)
	}
	rep := res.Chaos.Report
	if rep.Crashes != 1 || rep.Restarts < 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1 and >=1\napplied:\n%v",
			rep.Crashes, rep.Restarts, rep.Applied)
	}
	if res.Chaos.Check.AckedChecked == 0 {
		t.Fatal("no acknowledged operations were checked")
	}
	seeded, ok := sys.Net.(transport.Seeded)
	if !ok {
		t.Fatal("simnet fabric does not implement transport.Seeded")
	}
	if res.Seed != seeded.Seed() {
		t.Fatalf("RunResult.Seed = %d, want network seed %d", res.Seed, seeded.Seed())
	}
}

// The checker must reject a run where a replica silently lost committed
// operations: drop acked tail entries from every history and re-check.
func TestChaosCheckerFlagsInjectedLoss(t *testing.T) {
	sched, err := chaos.Scenario("crash-restart", chaos.ScenarioConfig{
		Seed: 7, Horizon: 800 * time.Millisecond, Settle: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := Build(Options{
		Protocol:      PBFT,
		ClientTimeout: 200 * time.Millisecond,
		Chaos:         sched,
	})
	defer sys.Close()
	res := Run(sys, Load{
		Clients:   2,
		Warmup:    100 * time.Millisecond,
		Duration:  800 * time.Millisecond,
		OpTimeout: 5 * time.Second,
	})
	if res.Chaos == nil || !res.Chaos.Check.Ok() {
		t.Fatalf("baseline run not safe: %+v", res.Chaos)
	}
	if res.Chaos.Check.AckedChecked == 0 {
		t.Fatal("no acks to corrupt")
	}
	// Treat every executed op of the longest history as acked (execution
	// precedes the reply, so this is a superset of the real ack set),
	// then silently lose the tail op from every replica. The checker
	// must flag the lost commit.
	longest := sys.RecApps[0].History()
	for _, ra := range sys.RecApps[1:] {
		if h := ra.History(); len(h) > len(longest) {
			longest = h
		}
	}
	var acks []chaos.Ack
	for _, e := range longest {
		acks = append(acks, chaos.Ack{Client: e.Client, Seq: e.Seq})
	}
	histories := make(map[int][]chaos.Entry)
	for i, ra := range sys.RecApps {
		ra.DropTail(1)
		histories[i] = ra.History()
	}
	if verdict := chaos.Check(histories, acks); verdict.Ok() {
		t.Fatal("checker passed a run with a lost committed operation")
	}
}

// Cold crash-restart of a NeoBFT replica mid-load: the replica loses all
// local state and must recover via snapshot state transfer from peers,
// rejoining before load ends.
func TestColdRestartRecoversViaSnapshot(t *testing.T) {
	sys := Build(Options{
		Protocol:           NeoHM,
		CheckpointInterval: 16,
		ClientTimeout:      200 * time.Millisecond,
	})
	defer sys.Close()

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cl := sys.NewClient(c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := make([]byte, 32)
			for {
				select {
				case <-stopc:
					return
				default:
				}
				cl.Invoke(op, 2*time.Second)
			}
		}()
	}
	defer func() { close(stopc); wg.Wait() }()

	waitCommitted := func(target uint64, what string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if sys.Committed() >= target {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s (committed=%d, want >=%d)", what, sys.Committed(), target)
	}
	waitCommitted(64, "initial load")

	if err := sys.Crash(3); err != nil {
		t.Fatal(err)
	}
	if sys.Alive(3) {
		t.Fatal("replica 3 still alive after crash")
	}
	// Let the survivors advance well past the victim's last checkpoint.
	waitCommitted(sys.Committed()+64, "progress with replica down")

	if err := sys.Restart(3, true); err != nil {
		t.Fatal(err)
	}
	target := sys.Committed()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		r3, ok := sys.Replicas[3].(*neobft.Replica)
		if ok && r3.SnapshotInstalls() >= 1 && sys.ExecutedAt(3) >= target {
			return // recovered via state transfer and caught up
		}
		time.Sleep(10 * time.Millisecond)
	}
	r3 := sys.Replicas[3].(*neobft.Replica)
	t.Fatalf("replica 3 did not recover: snapshotInstalls=%d executed=%d target=%d",
		r3.SnapshotInstalls(), sys.ExecutedAt(3), target)
}
