package bench

import (
	"testing"
	"time"
)

func TestSmokeAllSystems(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			sys := Build(Options{Protocol: p})
			defer sys.Close()
			res := Run(sys, Load{Clients: 2, Warmup: 50 * time.Millisecond, Duration: 150 * time.Millisecond})
			if res.Throughput == 0 {
				t.Fatalf("%s: zero throughput (errors=%d)", p, res.Errors)
			}
			// Every instrumented system must report live runtime-stage
			// and protocol counters in the merged metric snapshot.
			if v := flatValue(t, res.Metrics, "runtime_events_total"); v <= 0 {
				t.Errorf("%s: runtime_events_total = %v, want > 0", p, v)
			}
			if v := flatValue(t, res.Metrics, "proto_commits_total"); v <= 0 {
				t.Errorf("%s: proto_commits_total = %v, want > 0", p, v)
			}
			s := Summarize(res.Latencies)
			t.Logf("%s: %.0f ops/s median %v p99 %v errors %d", p, res.Throughput, s.Median, s.P99, res.Errors)
		})
	}
}
