package bench

import (
	"testing"
	"time"
)

func TestSmokeAllSystems(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			sys := Build(Options{Protocol: p})
			defer sys.Close()
			res := Run(sys, Load{Clients: 2, Warmup: 50 * time.Millisecond, Duration: 150 * time.Millisecond})
			if res.Throughput == 0 {
				t.Fatalf("%s: zero throughput (errors=%d)", p, res.Errors)
			}
			s := Summarize(res.Latencies)
			t.Logf("%s: %.0f ops/s median %v p99 %v errors %d", p, res.Throughput, s.Median, s.P99, res.Errors)
		})
	}
}
