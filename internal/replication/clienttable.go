package replication

import (
	"errors"
	"sort"

	"neobft/internal/transport"
	"neobft/internal/wire"
)

// ClientTable provides at-most-once execution semantics: it remembers the
// highest request ID executed per client and caches the reply so
// retransmitted requests are answered without re-execution (§C.1,
// "standard at-most-once techniques").
type ClientTable struct {
	entries map[transport.NodeID]*clientEntry
}

type clientEntry struct {
	lastReqID uint64
	lastReply *Reply
}

// NewClientTable creates an empty table.
func NewClientTable() *ClientTable {
	return &ClientTable{entries: make(map[transport.NodeID]*clientEntry)}
}

// Check classifies an incoming request ID for a client:
// fresh (execute it), duplicate (resend cached reply, returned non-nil),
// or stale (older than the last executed; ignore).
func (t *ClientTable) Check(client transport.NodeID, reqID uint64) (fresh bool, cached *Reply) {
	e, ok := t.entries[client]
	if !ok {
		return true, nil
	}
	switch {
	case reqID > e.lastReqID:
		return true, nil
	case reqID == e.lastReqID:
		return false, e.lastReply
	default:
		return false, nil
	}
}

// Store records the reply for a client's latest executed request.
func (t *ClientTable) Store(client transport.NodeID, reqID uint64, reply *Reply) {
	e, ok := t.entries[client]
	if !ok {
		e = &clientEntry{}
		t.entries[client] = e
	}
	if reqID >= e.lastReqID {
		e.lastReqID = reqID
		e.lastReply = reply
	}
}

// Forget removes a client's entry (used when rolling back speculative
// state past the request that created it).
func (t *ClientTable) Forget(client transport.NodeID) {
	delete(t.entries, client)
}

// Len returns the number of tracked clients.
func (t *ClientTable) Len() int { return len(t.entries) }

// Snapshot serializes the table deterministically (clients in ascending
// ID order). The client table must travel with application snapshots
// during state transfer: without it a restored replica would re-execute
// duplicate client requests that occupy later log slots, diverging from
// replicas that deduplicated them.
func (t *ClientTable) Snapshot() []byte {
	ids := make([]transport.NodeID, 0, len(t.entries))
	for id := range t.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := wire.NewWriter(16 + 64*len(ids))
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		e := t.entries[id]
		w.U32(uint32(id))
		w.U64(e.lastReqID)
		if e.lastReply != nil {
			// Canonicalize the cached reply: View, Replica and Auth are
			// per-replica, so they must not leak into snapshot bytes that
			// checkpoint digests are computed over. A restoring replica
			// re-stamps them with Reauth.
			c := *e.lastReply
			c.View = 0
			c.Replica = 0
			c.Auth = nil
			w.VarBytes(c.Marshal())
		} else {
			w.VarBytes(nil)
		}
	}
	return w.Bytes()
}

// Reauth re-stamps every cached reply as belonging to this replica:
// after Restore, the replies carry canonicalized (zeroed) Replica and
// Auth fields, and a duplicate request must be answered with a reply the
// client can authenticate. mac computes the replica-to-client MAC over
// the reply's signed body.
func (t *ClientTable) Reauth(replica uint32, mac func(client transport.NodeID, body []byte) []byte) {
	for id, e := range t.entries {
		if e.lastReply == nil {
			continue
		}
		e.lastReply.Replica = replica
		e.lastReply.Auth = mac(id, e.lastReply.SignedBody())
	}
}

var errClientTableSnapshot = errors.New("replication: malformed client-table snapshot")

// Restore replaces the table contents with a Snapshot's.
func (t *ClientTable) Restore(data []byte) error {
	rd := wire.NewReader(data)
	n := rd.U32()
	if rd.Err() != nil || n > 1<<24 {
		return errClientTableSnapshot
	}
	entries := make(map[transport.NodeID]*clientEntry, n)
	for i := uint32(0); i < n; i++ {
		id := transport.NodeID(rd.U32())
		e := &clientEntry{lastReqID: rd.U64()}
		if repB := rd.VarBytes(); len(repB) > 0 {
			rep, err := UnmarshalReply(repB[1:]) // skip the kind byte
			if err != nil {
				return errClientTableSnapshot
			}
			e.lastReply = rep
		}
		entries[id] = e
	}
	if err := rd.Done(); err != nil {
		return errClientTableSnapshot
	}
	t.entries = entries
	return nil
}
