package replication

import "neobft/internal/transport"

// ClientTable provides at-most-once execution semantics: it remembers the
// highest request ID executed per client and caches the reply so
// retransmitted requests are answered without re-execution (§C.1,
// "standard at-most-once techniques").
type ClientTable struct {
	entries map[transport.NodeID]*clientEntry
}

type clientEntry struct {
	lastReqID uint64
	lastReply *Reply
}

// NewClientTable creates an empty table.
func NewClientTable() *ClientTable {
	return &ClientTable{entries: make(map[transport.NodeID]*clientEntry)}
}

// Check classifies an incoming request ID for a client:
// fresh (execute it), duplicate (resend cached reply, returned non-nil),
// or stale (older than the last executed; ignore).
func (t *ClientTable) Check(client transport.NodeID, reqID uint64) (fresh bool, cached *Reply) {
	e, ok := t.entries[client]
	if !ok {
		return true, nil
	}
	switch {
	case reqID > e.lastReqID:
		return true, nil
	case reqID == e.lastReqID:
		return false, e.lastReply
	default:
		return false, nil
	}
}

// Store records the reply for a client's latest executed request.
func (t *ClientTable) Store(client transport.NodeID, reqID uint64, reply *Reply) {
	e, ok := t.entries[client]
	if !ok {
		e = &clientEntry{}
		t.entries[client] = e
	}
	if reqID >= e.lastReqID {
		e.lastReqID = reqID
		e.lastReply = reply
	}
}

// Forget removes a client's entry (used when rolling back speculative
// state past the request that created it).
func (t *ClientTable) Forget(client transport.NodeID) {
	delete(t.entries, client)
}

// Len returns the number of tracked clients.
func (t *ClientTable) Len() int { return len(t.entries) }
