// Package replication holds the state-machine-replication framework
// shared by every protocol in this repository (NeoBFT and all baselines):
// the application interface, client requests and replies on the wire, the
// at-most-once client table, the hash-chained log, quorum counting and
// request batching. Each protocol package builds its replica and client
// on these pieces so that performance comparisons measure protocol
// differences, not implementation differences.
package replication

import (
	"crypto/sha256"

	"neobft/internal/transport"
	"neobft/internal/wire"
)

// App is a deterministic replicated state machine. Execute applies one
// operation and returns its result plus an undo closure that restores the
// state as it was before the operation. Protocols that never roll back
// (all baselines) simply discard the undo; NeoBFT uses it to roll back
// speculative execution (§5.2). A nil undo is permitted for operations
// that are trivially idempotent to re-apply in reverse (e.g. reads).
type App interface {
	Execute(op []byte) (result []byte, undo func())
}

// Snapshotter is the state-transfer extension of App: applications that
// implement it can be checkpointed and restored, so a lagging replica
// receives a snapshot plus the log suffix instead of replaying the log
// from slot 1 (§B.2). Snapshot must be deterministic — two replicas with
// identical state return identical bytes — because checkpoint digests
// are computed over it. Restore replaces the application state wholesale
// with the snapshotted one.
type Snapshotter interface {
	Snapshot() []byte
	Restore(data []byte) error
}

// CaptureSnapshot bundles the application snapshot with the client table
// into one deterministic byte string — the unit every protocol's
// checkpoint digest covers and state transfer ships. The client table
// must travel with the application state: without it a restored replica
// would re-execute duplicate client requests occupying later log slots
// and diverge. Applications that do not implement Snapshotter contribute
// an empty application section.
func CaptureSnapshot(app App, table *ClientTable) []byte {
	var appB []byte
	if s, ok := app.(Snapshotter); ok {
		appB = s.Snapshot()
	}
	tableB := table.Snapshot()
	w := wire.NewWriter(16 + len(appB) + len(tableB))
	w.VarBytes(appB)
	w.VarBytes(tableB)
	return w.Bytes()
}

var errSnapshotBundle = &wireError{"replication: malformed snapshot bundle"}

type wireError struct{ msg string }

func (e *wireError) Error() string { return e.msg }

// InstallSnapshot restores a CaptureSnapshot bundle into the application
// and client table. The caller is responsible for re-stamping cached
// replies (ClientTable.Reauth) afterwards.
func InstallSnapshot(app App, table *ClientTable, data []byte) error {
	rd := wire.NewReader(data)
	appB := rd.VarBytes()
	tableB := rd.VarBytes()
	if rd.Done() != nil {
		return errSnapshotBundle
	}
	if s, ok := app.(Snapshotter); ok {
		if err := s.Restore(appB); err != nil {
			return err
		}
	} else if len(appB) != 0 {
		return errSnapshotBundle
	}
	return table.Restore(tableB)
}

// EchoApp is the echo-RPC application used by the paper's protocol-level
// experiments (§6.2): it returns the request payload unchanged.
type EchoApp struct{}

// Execute implements App.
func (EchoApp) Execute(op []byte) ([]byte, func()) { return op, nil }

// Snapshot implements Snapshotter: the echo app is stateless.
func (EchoApp) Snapshot() []byte { return nil }

// Restore implements Snapshotter.
func (EchoApp) Restore(data []byte) error { return nil }

// Message kinds shared by all protocols. Protocol-specific kinds start at
// KindProtocolBase.
const (
	KindRequest uint8 = 1
	KindReply   uint8 = 2
	// KindProtocolBase is the first protocol-private message kind.
	KindProtocolBase uint8 = 16
)

// Request is a client operation submission:
// ⟨REQUEST, op, request-id⟩_σc (§5.3).
type Request struct {
	Client transport.NodeID
	ReqID  uint64
	Op     []byte
	// Auth is the client's MAC vector over the request body (one lane
	// per replica).
	Auth []byte
}

// Marshal encodes the request with its envelope kind.
func (r *Request) Marshal() []byte {
	w := wire.NewWriter(64 + len(r.Op) + len(r.Auth))
	w.U8(KindRequest)
	w.U32(uint32(r.Client))
	w.U64(r.ReqID)
	w.VarBytes(r.Op)
	w.VarBytes(r.Auth)
	return w.Bytes()
}

// SignedBody returns the byte string the client authenticates.
func (r *Request) SignedBody() []byte {
	w := wire.NewWriter(32 + len(r.Op))
	w.U32(uint32(r.Client))
	w.U64(r.ReqID)
	w.VarBytes(r.Op)
	return w.Bytes()
}

// UnmarshalRequest decodes a request (after the kind byte has been
// consumed or at offset 1 of a raw packet).
func UnmarshalRequest(body []byte) (*Request, error) {
	rd := wire.NewReader(body)
	r := &Request{}
	r.Client = transport.NodeID(rd.U32())
	r.ReqID = rd.U64()
	r.Op = append([]byte(nil), rd.VarBytes()...)
	r.Auth = append([]byte(nil), rd.VarBytes()...)
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return r, nil
}

// Reply is a replica's response:
// ⟨REPLY, view-id, i, log-slot-num, log-hash, request-id, result⟩_σi (§5.3).
// Baselines leave fields they do not use at zero.
type Reply struct {
	View    uint64
	Replica uint32
	Slot    uint64
	LogHash [32]byte
	ReqID   uint64
	Result  []byte
	// Speculative marks a Zyzzyva-style speculative reply.
	Speculative bool
	// Auth is the replica's MAC to the client.
	Auth []byte
}

// Marshal encodes the reply with its envelope kind.
func (r *Reply) Marshal() []byte {
	w := wire.NewWriter(96 + len(r.Result) + len(r.Auth))
	w.U8(KindReply)
	w.U64(r.View)
	w.U32(r.Replica)
	w.U64(r.Slot)
	w.Bytes32(r.LogHash)
	w.U64(r.ReqID)
	w.Bool(r.Speculative)
	w.VarBytes(r.Result)
	w.VarBytes(r.Auth)
	return w.Bytes()
}

// SignedBody returns the byte string the replica authenticates.
func (r *Reply) SignedBody() []byte {
	w := wire.NewWriter(96 + len(r.Result))
	w.U64(r.View)
	w.U32(r.Replica)
	w.U64(r.Slot)
	w.Bytes32(r.LogHash)
	w.U64(r.ReqID)
	w.Bool(r.Speculative)
	w.VarBytes(r.Result)
	return w.Bytes()
}

// UnmarshalReply decodes a reply body.
func UnmarshalReply(body []byte) (*Reply, error) {
	rd := wire.NewReader(body)
	r := &Reply{}
	r.View = rd.U64()
	r.Replica = rd.U32()
	r.Slot = rd.U64()
	r.LogHash = rd.Bytes32()
	r.ReqID = rd.U64()
	r.Speculative = rd.Bool()
	r.Result = append([]byte(nil), rd.VarBytes()...)
	r.Auth = append([]byte(nil), rd.VarBytes()...)
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return r, nil
}

// RequestDigest hashes a request for log hashing and certificates.
func RequestDigest(r *Request) [32]byte {
	return sha256.Sum256(r.SignedBody())
}

// ChainHash extends a hash chain: H(prev ‖ entry). Used for the O(1)
// incremental log-hash of §5.3.
func ChainHash(prev [32]byte, entry [32]byte) [32]byte {
	var buf [64]byte
	copy(buf[:32], prev[:])
	copy(buf[32:], entry[:])
	return sha256.Sum256(buf[:])
}
