// Package replication holds the state-machine-replication framework
// shared by every protocol in this repository (NeoBFT and all baselines):
// the application interface, client requests and replies on the wire, the
// at-most-once client table, the hash-chained log, quorum counting and
// request batching. Each protocol package builds its replica and client
// on these pieces so that performance comparisons measure protocol
// differences, not implementation differences.
package replication

import (
	"crypto/sha256"

	"neobft/internal/transport"
	"neobft/internal/wire"
)

// App is a deterministic replicated state machine. Execute applies one
// operation and returns its result plus an undo closure that restores the
// state as it was before the operation. Protocols that never roll back
// (all baselines) simply discard the undo; NeoBFT uses it to roll back
// speculative execution (§5.2). A nil undo is permitted for operations
// that are trivially idempotent to re-apply in reverse (e.g. reads).
type App interface {
	Execute(op []byte) (result []byte, undo func())
}

// EchoApp is the echo-RPC application used by the paper's protocol-level
// experiments (§6.2): it returns the request payload unchanged.
type EchoApp struct{}

// Execute implements App.
func (EchoApp) Execute(op []byte) ([]byte, func()) { return op, nil }

// Message kinds shared by all protocols. Protocol-specific kinds start at
// KindProtocolBase.
const (
	KindRequest uint8 = 1
	KindReply   uint8 = 2
	// KindProtocolBase is the first protocol-private message kind.
	KindProtocolBase uint8 = 16
)

// Request is a client operation submission:
// ⟨REQUEST, op, request-id⟩_σc (§5.3).
type Request struct {
	Client transport.NodeID
	ReqID  uint64
	Op     []byte
	// Auth is the client's MAC vector over the request body (one lane
	// per replica).
	Auth []byte
}

// Marshal encodes the request with its envelope kind.
func (r *Request) Marshal() []byte {
	w := wire.NewWriter(64 + len(r.Op) + len(r.Auth))
	w.U8(KindRequest)
	w.U32(uint32(r.Client))
	w.U64(r.ReqID)
	w.VarBytes(r.Op)
	w.VarBytes(r.Auth)
	return w.Bytes()
}

// SignedBody returns the byte string the client authenticates.
func (r *Request) SignedBody() []byte {
	w := wire.NewWriter(32 + len(r.Op))
	w.U32(uint32(r.Client))
	w.U64(r.ReqID)
	w.VarBytes(r.Op)
	return w.Bytes()
}

// UnmarshalRequest decodes a request (after the kind byte has been
// consumed or at offset 1 of a raw packet).
func UnmarshalRequest(body []byte) (*Request, error) {
	rd := wire.NewReader(body)
	r := &Request{}
	r.Client = transport.NodeID(rd.U32())
	r.ReqID = rd.U64()
	r.Op = append([]byte(nil), rd.VarBytes()...)
	r.Auth = append([]byte(nil), rd.VarBytes()...)
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return r, nil
}

// Reply is a replica's response:
// ⟨REPLY, view-id, i, log-slot-num, log-hash, request-id, result⟩_σi (§5.3).
// Baselines leave fields they do not use at zero.
type Reply struct {
	View    uint64
	Replica uint32
	Slot    uint64
	LogHash [32]byte
	ReqID   uint64
	Result  []byte
	// Speculative marks a Zyzzyva-style speculative reply.
	Speculative bool
	// Auth is the replica's MAC to the client.
	Auth []byte
}

// Marshal encodes the reply with its envelope kind.
func (r *Reply) Marshal() []byte {
	w := wire.NewWriter(96 + len(r.Result) + len(r.Auth))
	w.U8(KindReply)
	w.U64(r.View)
	w.U32(r.Replica)
	w.U64(r.Slot)
	w.Bytes32(r.LogHash)
	w.U64(r.ReqID)
	w.Bool(r.Speculative)
	w.VarBytes(r.Result)
	w.VarBytes(r.Auth)
	return w.Bytes()
}

// SignedBody returns the byte string the replica authenticates.
func (r *Reply) SignedBody() []byte {
	w := wire.NewWriter(96 + len(r.Result))
	w.U64(r.View)
	w.U32(r.Replica)
	w.U64(r.Slot)
	w.Bytes32(r.LogHash)
	w.U64(r.ReqID)
	w.Bool(r.Speculative)
	w.VarBytes(r.Result)
	return w.Bytes()
}

// UnmarshalReply decodes a reply body.
func UnmarshalReply(body []byte) (*Reply, error) {
	rd := wire.NewReader(body)
	r := &Reply{}
	r.View = rd.U64()
	r.Replica = rd.U32()
	r.Slot = rd.U64()
	r.LogHash = rd.Bytes32()
	r.ReqID = rd.U64()
	r.Speculative = rd.Bool()
	r.Result = append([]byte(nil), rd.VarBytes()...)
	r.Auth = append([]byte(nil), rd.VarBytes()...)
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return r, nil
}

// RequestDigest hashes a request for log hashing and certificates.
func RequestDigest(r *Request) [32]byte {
	return sha256.Sum256(r.SignedBody())
}

// ChainHash extends a hash chain: H(prev ‖ entry). Used for the O(1)
// incremental log-hash of §5.3.
func ChainHash(prev [32]byte, entry [32]byte) [32]byte {
	var buf [64]byte
	copy(buf[:32], prev[:])
	copy(buf[32:], entry[:])
	return sha256.Sum256(buf[:])
}
