package replication

import (
	"bytes"
	"testing"

	"neobft/internal/transport"
)

// FuzzUnmarshal exercises the wire.Reader-based decoders with arbitrary
// bytes: decoders must never panic, and any value that decodes must
// round-trip exactly through Marshal (after stripping the envelope
// kind).
func FuzzUnmarshal(f *testing.F) {
	req := &Request{Client: 10007, ReqID: 42, Op: []byte("get k"), Auth: []byte("mac-vector")}
	rep := &Reply{View: 3, Replica: 2, Slot: 99, ReqID: 42, Result: []byte("v"),
		Speculative: true, Auth: []byte("mac")}
	rep.LogHash[0] = 0xAA
	f.Add(req.Marshal()[1:])
	f.Add(rep.Marshal()[1:])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := UnmarshalRequest(data); err == nil {
			if got := r.Marshal()[1:]; !bytes.Equal(got, data) {
				t.Fatalf("request did not round-trip:\n in  %x\n out %x", data, got)
			}
			// SignedBody and digest must be computable on any decoded value.
			_ = r.SignedBody()
			_ = RequestDigest(r)
		}
		if r, err := UnmarshalReply(data); err == nil {
			if got := r.Marshal()[1:]; !bytes.Equal(got, data) {
				t.Fatalf("reply did not round-trip:\n in  %x\n out %x", data, got)
			}
			_ = r.SignedBody()
		}
	})
}

// FuzzRoundTrip drives the encoders from structured corpus values and
// checks decode(encode(v)) == v for both message types.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint64(7), []byte("op"), []byte("auth"))
	f.Add(uint32(0), uint64(0), []byte{}, []byte{})
	f.Add(uint32(1<<31), ^uint64(0), bytes.Repeat([]byte{0xAB}, 300), []byte{0})

	f.Fuzz(func(t *testing.T, client uint32, id uint64, op, mac []byte) {
		req := &Request{Client: transport.NodeID(client), ReqID: id, Op: op, Auth: mac}
		got, err := UnmarshalRequest(req.Marshal()[1:])
		if err != nil {
			t.Fatalf("request did not decode: %v", err)
		}
		if got.Client != req.Client || got.ReqID != req.ReqID ||
			!bytes.Equal(got.Op, req.Op) || !bytes.Equal(got.Auth, req.Auth) {
			t.Fatalf("request round-trip mismatch: %+v vs %+v", got, req)
		}
		rep := &Reply{View: id, Replica: client, Slot: id ^ 0x5555, ReqID: id, Result: op, Auth: mac}
		copy(rep.LogHash[:], mac)
		gotRep, err := UnmarshalReply(rep.Marshal()[1:])
		if err != nil {
			t.Fatalf("reply did not decode: %v", err)
		}
		if gotRep.View != rep.View || gotRep.Replica != rep.Replica ||
			gotRep.LogHash != rep.LogHash || !bytes.Equal(gotRep.Result, rep.Result) {
			t.Fatalf("reply round-trip mismatch: %+v vs %+v", gotRep, rep)
		}
	})
}
