package replication

import (
	"fmt"
	"sync"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/metrics"
	"neobft/internal/transport"
)

// ClientConfig configures a protocol client.
type ClientConfig struct {
	// Conn is the client's network attachment.
	Conn transport.Conn
	// N and F are the replication parameters.
	N, F int
	// Quorum is how many matching replies complete an invocation
	// (NeoBFT: 2f+1; PBFT/HotStuff/MinBFT: f+1; Zyzzyva uses its own
	// client).
	Quorum int
	// MatchPosition additionally requires replies to agree on
	// (View, Slot, LogHash), as NeoBFT does (§5.3).
	MatchPosition bool
	// Auth authenticates requests and verifies replies.
	Auth *auth.ClientSide
	// Submit sends a request into the protocol; retry is true on
	// retransmissions (NeoBFT then also unicasts to all replicas).
	Submit func(req *Request, retry bool)
	// Timeout is the initial retransmission interval (default 100ms).
	// Each unanswered retransmission doubles it up to MaxTimeout, so a
	// partitioned client backs off instead of storming the network.
	Timeout time.Duration
	// MaxTimeout caps the retransmission backoff (default 8×Timeout).
	MaxTimeout time.Duration
	// Window is how many operations may be in flight at once (default
	// 1 — the classical closed-loop client). Start blocks while the
	// window is full; completions are released in issue order either
	// way, so window=1 behaves exactly like the pre-pipelining client.
	Window int
	// Metrics, when non-nil, receives the client_* series
	// (retransmissions, timeouts, in-flight gauge).
	Metrics *metrics.Registry
	// OnReplyHook, if set, observes every authenticated reply (used by
	// protocol clients to track the current primary from Reply.View).
	OnReplyHook func(*Reply)
}

// Tuning bundles the client-side knobs every protocol constructor
// threads into ClientConfig: the in-flight window, the retransmission
// backoff, and the metrics registry for the client_* series. The zero
// value is the classical closed-loop client (window 1, 100ms initial
// retransmit, 8× backoff cap, no metrics).
type Tuning struct {
	Window     int
	Timeout    time.Duration
	MaxTimeout time.Duration
	Metrics    *metrics.Registry
}

// Apply copies the tuning onto a ClientConfig.
func (t Tuning) Apply(cfg *ClientConfig) {
	cfg.Window = t.Window
	cfg.Timeout = t.Timeout
	cfg.MaxTimeout = t.MaxTimeout
	cfg.Metrics = t.Metrics
}

// Call is one in-flight operation started with Start. Wait blocks until
// the operation completes (quorum of matching replies, or its deadline)
// AND every operation started before it has completed — completions are
// released strictly in issue order, which keeps per-client request
// semantics identical to the closed-loop client.
type Call interface {
	Wait() ([]byte, error)
}

// Client is a windowed pipelined BFT client: up to Window operations in
// flight, each with its own quorum tracking and retransmission backoff,
// with in-order completion. Invoke (Start + Wait) preserves the
// closed-loop API.
type Client struct {
	cfg ClientConfig

	// slots is the in-flight window semaphore: Start acquires, finish
	// (quorum or timeout) releases.
	slots chan struct{}

	mu      sync.Mutex
	reqID   uint64
	pending map[uint64]*call // reqID → in-flight call
	queue   []*call          // issue order, for in-order release

	mRetrans  *metrics.Counter
	mTimeouts *metrics.Counter
	gInflight *metrics.Gauge
}

type replyKey struct {
	view    uint64
	slot    uint64
	logHash [32]byte
	result  string
}

type call struct {
	c     *Client
	req   *Request
	votes map[replyKey]map[uint32]bool
	// quorum receives the result when enough matching replies arrive.
	quorum chan []byte
	// ready is closed when this call and every earlier one finished.
	ready    chan struct{}
	finished bool
	result   []byte
	err      error
}

// NewClient creates a client. The caller must route inbound packets to
// HandlePacket (typically from the Conn handler).
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout == 0 {
		cfg.Timeout = 100 * time.Millisecond
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = 8 * cfg.Timeout
	}
	if cfg.MaxTimeout < cfg.Timeout {
		cfg.MaxTimeout = cfg.Timeout
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	c := &Client{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.Window),
		pending: make(map[uint64]*call),
	}
	if reg := cfg.Metrics; reg != nil {
		c.mRetrans = reg.Counter("client_retransmits_total")
		c.mTimeouts = reg.Counter("client_timeouts_total")
		c.gInflight = reg.Gauge("client_inflight")
	}
	return c
}

// ID returns the client's node ID.
func (c *Client) ID() transport.NodeID { return c.cfg.Conn.ID() }

// Start submits one operation and returns its Call. It blocks while the
// in-flight window is full.
func (c *Client) Start(op []byte, deadline time.Duration) Call {
	c.slots <- struct{}{}
	c.mu.Lock()
	c.reqID++
	req := &Request{Client: c.cfg.Conn.ID(), ReqID: c.reqID, Op: op}
	req.Auth = c.cfg.Auth.TagVector(req.SignedBody())
	k := &call{
		c:      c,
		req:    req,
		votes:  make(map[replyKey]map[uint32]bool),
		quorum: make(chan []byte, 1),
		ready:  make(chan struct{}),
	}
	c.pending[req.ReqID] = k
	c.queue = append(c.queue, k)
	c.gInflight.Set(int64(len(c.pending)))
	c.mu.Unlock()

	c.cfg.Submit(req, false)
	go k.run(deadline)
	return k
}

// Invoke executes one operation and blocks until it is successful
// (quorum of matching, authenticated replies) or the deadline passes.
func (c *Client) Invoke(op []byte, deadline time.Duration) ([]byte, error) {
	return c.Start(op, deadline).Wait()
}

// Wait implements Call.
func (k *call) Wait() ([]byte, error) {
	<-k.ready
	return k.result, k.err
}

// run owns the call's timers: retransmission with exponential backoff
// and the overall deadline.
func (k *call) run(deadline time.Duration) {
	c := k.c
	interval := c.cfg.Timeout
	retrans := time.NewTimer(interval)
	defer retrans.Stop()
	overall := time.NewTimer(deadline)
	defer overall.Stop()
	for {
		select {
		case result := <-k.quorum:
			k.finish(result, nil)
			return
		case <-retrans.C:
			c.cfg.Submit(k.req, true)
			c.mRetrans.Inc()
			interval *= 2
			if interval > c.cfg.MaxTimeout {
				interval = c.cfg.MaxTimeout
			}
			retrans.Reset(interval)
		case <-overall.C:
			c.mTimeouts.Inc()
			k.finish(nil, fmt.Errorf("client %d: request %d timed out", c.cfg.Conn.ID(), k.req.ReqID))
			return
		}
	}
}

// finish records the call's outcome, frees its window slot, and releases
// every completion that is now at the head of the issue order.
func (k *call) finish(result []byte, err error) {
	c := k.c
	c.mu.Lock()
	k.result = result
	k.err = err
	k.finished = true
	delete(c.pending, k.req.ReqID)
	c.gInflight.Set(int64(len(c.pending)))
	for len(c.queue) > 0 && c.queue[0].finished {
		close(c.queue[0].ready)
		c.queue = c.queue[1:]
	}
	c.mu.Unlock()
	<-c.slots
}

// HandlePacket consumes a reply packet; it returns true if the packet was
// a reply envelope.
func (c *Client) HandlePacket(from transport.NodeID, pkt []byte) bool {
	if len(pkt) == 0 || pkt[0] != KindReply {
		return false
	}
	rep, err := UnmarshalReply(pkt[1:])
	if err != nil {
		return true
	}
	c.OnReply(rep)
	return true
}

// OnReply feeds a decoded reply into the quorum counter of the call it
// answers.
func (c *Client) OnReply(rep *Reply) {
	if int(rep.Replica) >= c.cfg.N {
		return
	}
	if !c.cfg.Auth.VerifyFrom(int(rep.Replica), rep.SignedBody(), rep.Auth) {
		return
	}
	if c.cfg.OnReplyHook != nil {
		c.cfg.OnReplyHook(rep)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.pending[rep.ReqID]
	if k == nil {
		return
	}
	key := replyKey{result: string(rep.Result)}
	if c.cfg.MatchPosition {
		key.view = rep.View
		key.slot = rep.Slot
		key.logHash = rep.LogHash
	}
	voters := k.votes[key]
	if voters == nil {
		voters = make(map[uint32]bool)
		k.votes[key] = voters
	}
	voters[rep.Replica] = true
	if len(voters) >= c.cfg.Quorum {
		select {
		case k.quorum <- rep.Result:
		default:
		}
	}
}
