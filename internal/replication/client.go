package replication

import (
	"fmt"
	"sync"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/transport"
)

// ClientConfig configures a closed-loop protocol client.
type ClientConfig struct {
	// Conn is the client's network attachment.
	Conn transport.Conn
	// N and F are the replication parameters.
	N, F int
	// Quorum is how many matching replies complete an invocation
	// (NeoBFT: 2f+1; PBFT/HotStuff/MinBFT: f+1; Zyzzyva uses its own
	// client).
	Quorum int
	// MatchPosition additionally requires replies to agree on
	// (View, Slot, LogHash), as NeoBFT does (§5.3).
	MatchPosition bool
	// Auth authenticates requests and verifies replies.
	Auth *auth.ClientSide
	// Submit sends a request into the protocol; retry is true on
	// retransmissions (NeoBFT then also unicasts to all replicas).
	Submit func(req *Request, retry bool)
	// Timeout is the retransmission interval (default 100ms).
	Timeout time.Duration
	// OnReplyHook, if set, observes every authenticated reply (used by
	// protocol clients to track the current primary from Reply.View).
	OnReplyHook func(*Reply)
}

// Client is a closed-loop BFT client: one outstanding operation at a
// time, retried until a quorum of matching replies arrives.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	reqID   uint64
	pending *pendingOp
}

type replyKey struct {
	view    uint64
	slot    uint64
	logHash [32]byte
	result  string
}

type pendingOp struct {
	reqID uint64
	votes map[replyKey]map[uint32]bool
	done  chan []byte
}

// NewClient creates a client. The caller must route inbound packets to
// HandlePacket (typically from the Conn handler).
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout == 0 {
		cfg.Timeout = 100 * time.Millisecond
	}
	return &Client{cfg: cfg}
}

// ID returns the client's node ID.
func (c *Client) ID() transport.NodeID { return c.cfg.Conn.ID() }

// Invoke executes one operation and blocks until it is successful
// (quorum of matching, authenticated replies) or the deadline passes.
func (c *Client) Invoke(op []byte, deadline time.Duration) ([]byte, error) {
	c.mu.Lock()
	c.reqID++
	req := &Request{Client: c.cfg.Conn.ID(), ReqID: c.reqID, Op: op}
	req.Auth = c.cfg.Auth.TagVector(req.SignedBody())
	p := &pendingOp{
		reqID: req.ReqID,
		votes: make(map[replyKey]map[uint32]bool),
		done:  make(chan []byte, 1),
	}
	c.pending = p
	c.mu.Unlock()

	c.cfg.Submit(req, false)
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()
	overall := time.NewTimer(deadline)
	defer overall.Stop()
	for {
		select {
		case result := <-p.done:
			c.mu.Lock()
			c.pending = nil
			c.mu.Unlock()
			return result, nil
		case <-timer.C:
			c.cfg.Submit(req, true)
			timer.Reset(c.cfg.Timeout)
		case <-overall.C:
			c.mu.Lock()
			c.pending = nil
			c.mu.Unlock()
			return nil, fmt.Errorf("client %d: request %d timed out", c.cfg.Conn.ID(), req.ReqID)
		}
	}
}

// HandlePacket consumes a reply packet; it returns true if the packet was
// a reply envelope.
func (c *Client) HandlePacket(from transport.NodeID, pkt []byte) bool {
	if len(pkt) == 0 || pkt[0] != KindReply {
		return false
	}
	rep, err := UnmarshalReply(pkt[1:])
	if err != nil {
		return true
	}
	c.OnReply(rep)
	return true
}

// OnReply feeds a decoded reply into the quorum counter.
func (c *Client) OnReply(rep *Reply) {
	if int(rep.Replica) >= c.cfg.N {
		return
	}
	if !c.cfg.Auth.VerifyFrom(int(rep.Replica), rep.SignedBody(), rep.Auth) {
		return
	}
	if c.cfg.OnReplyHook != nil {
		c.cfg.OnReplyHook(rep)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pending
	if p == nil || rep.ReqID != p.reqID {
		return
	}
	key := replyKey{result: string(rep.Result)}
	if c.cfg.MatchPosition {
		key.view = rep.View
		key.slot = rep.Slot
		key.logHash = rep.LogHash
	}
	voters := p.votes[key]
	if voters == nil {
		voters = make(map[uint32]bool)
		p.votes[key] = voters
	}
	voters[rep.Replica] = true
	if len(voters) >= c.cfg.Quorum {
		select {
		case p.done <- rep.Result:
		default:
		}
	}
}
