package replication

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/metrics"
	"neobft/internal/simnet"
	"neobft/internal/transport"
)

// startEchoReplicas joins n scripted replicas that reply "ok:<op>" to
// every request the gate admits. Requests for which gate returns false
// are silently dropped, so the client has to retransmit them.
func startEchoReplicas(net *simnet.Network, master []byte, n int, gate func(replica int, req *Request, retry bool) bool) {
	for i := 0; i < n; i++ {
		idx := i
		conn := net.Join(transport.NodeID(i))
		rsides := auth.NewReplicaSide(master, idx)
		conn.SetHandler(func(from transport.NodeID, pkt []byte) {
			if len(pkt) == 0 || pkt[0] != KindRequest {
				return
			}
			req, err := UnmarshalRequest(pkt[1:])
			if err != nil {
				return
			}
			if !rsides.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
				return
			}
			if gate != nil && !gate(idx, req, false) {
				return
			}
			rep := &Reply{View: 1, Replica: uint32(idx), Slot: req.ReqID, ReqID: req.ReqID,
				Result: append([]byte("ok:"), req.Op...)}
			rep.Auth = rsides.TagFor(int64(req.Client), rep.SignedBody())
			conn.Send(from, rep.Marshal())
		})
	}
}

func pipelineClient(net *simnet.Network, master []byte, n, f int, mod func(*ClientConfig)) *Client {
	clientConn := net.Join(100)
	cfg := ClientConfig{
		Conn: clientConn, N: n, F: f, Quorum: 2*f + 1,
		Auth: auth.NewClientSide(master, 100, n),
		Submit: func(req *Request, retry bool) {
			pkt := req.Marshal()
			for i := 0; i < n; i++ {
				clientConn.Send(transport.NodeID(i), pkt)
			}
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	cl := NewClient(cfg)
	clientConn.SetHandler(func(from transport.NodeID, pkt []byte) { cl.HandlePacket(from, pkt) })
	return cl
}

// TestClientPipelineOutOfOrder issues two requests through a window of
// 4, has the replicas hold back the first one, and checks that the
// second request's quorum (which arrives first) is still delivered to
// the right call once the first resolves.
func TestClientPipelineOutOfOrder(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	master := []byte("m")
	const n, f = 4, 1

	var holdFirst atomic.Bool
	holdFirst.Store(true)
	startEchoReplicas(net, master, n, func(_ int, req *Request, _ bool) bool {
		return !(req.ReqID == 1 && holdFirst.Load())
	})

	cl := pipelineClient(net, master, n, f, func(cfg *ClientConfig) {
		cfg.Window = 4
		cfg.Timeout = 20 * time.Millisecond
	})

	c1 := cl.Start([]byte("first"), 5*time.Second)
	c2 := cl.Start([]byte("second"), 5*time.Second)

	// Request 2's quorum completes immediately, but its Wait must not
	// unblock until request 1 — issued before it — has finished too:
	// completions are released in issue order.
	done2 := make(chan struct{})
	go func() {
		c2.Wait()
		close(done2)
	}()
	select {
	case <-done2:
		t.Fatal("request 2 released before request 1 finished")
	case <-time.After(100 * time.Millisecond):
	}

	// Release request 1; the client's retransmission picks it up.
	holdFirst.Store(false)

	r1, err := c1.Wait()
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if string(r1) != "ok:first" {
		t.Fatalf("first result = %q", r1)
	}
	<-done2
	r2, err := c2.Wait()
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if string(r2) != "ok:second" {
		t.Fatalf("second result = %q", r2)
	}
}

// TestClientWindowFullBlocks checks that Start blocks once Window
// requests are in flight and unblocks as soon as one resolves.
func TestClientWindowFullBlocks(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	master := []byte("m")
	const n, f = 4, 1

	// Replicas never answer: slots only free up via per-call deadlines.
	startEchoReplicas(net, master, n, func(int, *Request, bool) bool { return false })

	cl := pipelineClient(net, master, n, f, func(cfg *ClientConfig) {
		cfg.Window = 2
		cfg.Timeout = time.Second
	})

	c1 := cl.Start([]byte("a"), 300*time.Millisecond)
	c2 := cl.Start([]byte("b"), 2*time.Second)

	started3 := make(chan Call, 1)
	go func() { started3 <- cl.Start([]byte("c"), 2*time.Second) }()
	select {
	case <-started3:
		t.Fatal("third Start admitted past a full window")
	case <-time.After(100 * time.Millisecond):
	}

	// Call 1's deadline expires, freeing a slot; Start must return.
	if _, err := c1.Wait(); err == nil {
		t.Fatal("call 1 should have timed out")
	}
	var c3 Call
	select {
	case c3 = <-started3:
	case <-time.After(time.Second):
		t.Fatal("third Start still blocked after a slot freed up")
	}
	if _, err := c2.Wait(); err == nil {
		t.Fatal("call 2 should have timed out")
	}
	if _, err := c3.Wait(); err == nil {
		t.Fatal("call 3 should have timed out")
	}
}

// TestClientRetransmitBackoff checks that retransmission intervals
// double up to MaxTimeout: with Timeout=10ms capped at 40ms, a 250ms
// deadline admits roughly 10+20+40+40+... retransmissions (about 6),
// far fewer than the ~25 a fixed 10ms interval would produce. It also
// checks the retransmit/timeout counters and the retry flag.
func TestClientRetransmitBackoff(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	master := []byte("m")
	const n, f = 4, 1

	reg := metrics.NewRegistry()
	var mu sync.Mutex
	var submits []bool
	clientConn := net.Join(100)
	cl := NewClient(ClientConfig{
		Conn: clientConn, N: n, F: f, Quorum: 2*f + 1,
		Auth:       auth.NewClientSide(master, 100, n),
		Timeout:    10 * time.Millisecond,
		MaxTimeout: 40 * time.Millisecond,
		Metrics:    reg,
		Submit: func(req *Request, retry bool) {
			mu.Lock()
			submits = append(submits, retry)
			mu.Unlock()
		},
	})

	if _, err := cl.Invoke([]byte("x"), 250*time.Millisecond); err == nil {
		t.Fatal("invoke should time out with no replicas")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(submits) == 0 || submits[0] {
		t.Fatalf("first submit missing or marked retry: %v", submits)
	}
	retries := 0
	for _, r := range submits[1:] {
		if !r {
			t.Fatal("retransmission not marked retry")
		}
		retries++
	}
	// Doubling from 10ms capped at 40ms fits ~6 retransmissions in
	// 250ms; a fixed interval would fit ~25. Allow generous slack for
	// scheduler jitter but reject anything near the un-backed-off count.
	if retries < 3 || retries > 12 {
		t.Fatalf("retransmissions = %d, want backoff-shaped count in [3,12]", retries)
	}
	if got := reg.Counter("client_retransmits_total").Load(); got != uint64(retries) {
		t.Fatalf("client_retransmits_total = %d, want %d", got, retries)
	}
	if got := reg.Counter("client_timeouts_total").Load(); got != 1 {
		t.Fatalf("client_timeouts_total = %d, want 1", got)
	}
}

// TestClientWindowOneSerializes checks that the default window of 1
// preserves closed-loop semantics: a second Start admits only after the
// first call resolves.
func TestClientWindowOneSerializes(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	master := []byte("m")
	const n, f = 4, 1

	startEchoReplicas(net, master, n, func(int, *Request, bool) bool { return false })

	cl := pipelineClient(net, master, n, f, func(cfg *ClientConfig) {
		cfg.Timeout = time.Second
	})

	c1 := cl.Start([]byte("a"), 300*time.Millisecond)
	started2 := make(chan Call, 1)
	go func() { started2 <- cl.Start([]byte("b"), 2*time.Second) }()
	select {
	case <-started2:
		t.Fatal("window=1 admitted a second in-flight request")
	case <-time.After(100 * time.Millisecond):
	}
	if _, err := c1.Wait(); err == nil {
		t.Fatal("call 1 should have timed out")
	}
	select {
	case c2 := <-started2:
		if _, err := c2.Wait(); err == nil {
			t.Fatal("call 2 should have timed out")
		}
	case <-time.After(time.Second):
		t.Fatal("second Start still blocked after first resolved")
	}
}

// TestClientRetransmitReachesBackups models a failed primary: the
// first transmission goes nowhere, and replicas only answer requests
// flagged as retries (the retransmission broadcast a real client sends
// after a view change). The call must still complete.
func TestClientRetransmitReachesBackups(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	master := []byte("m")
	const n, f = 4, 1

	reg := metrics.NewRegistry()
	startEchoReplicas(net, master, n, nil)

	var sent atomic.Int64
	clientConn := net.Join(100)
	cl := NewClient(ClientConfig{
		Conn: clientConn, N: n, F: f, Quorum: 2*f + 1,
		Auth:    auth.NewClientSide(master, 100, n),
		Timeout: 10 * time.Millisecond,
		Metrics: reg,
		Submit: func(req *Request, retry bool) {
			sent.Add(1)
			if !retry {
				return // primary is down; the first send is lost
			}
			pkt := req.Marshal()
			for i := 0; i < n; i++ {
				clientConn.Send(transport.NodeID(i), pkt)
			}
		},
	})
	clientConn.SetHandler(func(from transport.NodeID, pkt []byte) { cl.HandlePacket(from, pkt) })

	res, err := cl.Invoke([]byte("survive"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok:survive" {
		t.Fatalf("result = %q", res)
	}
	if sent.Load() < 2 {
		t.Fatal("call completed without a retransmission")
	}
	if reg.Counter("client_retransmits_total").Load() == 0 {
		t.Fatal("retransmit counter not incremented")
	}
}
