package replication

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/simnet"
	"neobft/internal/transport"
)

func TestRequestRoundTrip(t *testing.T) {
	r := &Request{Client: 42, ReqID: 7, Op: []byte("put k v"), Auth: []byte{1, 2, 3}}
	buf := r.Marshal()
	if buf[0] != KindRequest {
		t.Fatal("missing envelope kind")
	}
	got, err := UnmarshalRequest(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Client != 42 || got.ReqID != 7 || !bytes.Equal(got.Op, r.Op) || !bytes.Equal(got.Auth, r.Auth) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	r := &Reply{View: 3, Replica: 2, Slot: 55, LogHash: [32]byte{9}, ReqID: 7,
		Result: []byte("ok"), Speculative: true, Auth: []byte{4, 5}}
	buf := r.Marshal()
	got, err := UnmarshalReply(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.View != 3 || got.Replica != 2 || got.Slot != 55 || got.LogHash != r.LogHash ||
		got.ReqID != 7 || !got.Speculative || string(got.Result) != "ok" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(client int32, reqID uint64, op []byte) bool {
		r := &Request{Client: transport.NodeID(client), ReqID: reqID, Op: op}
		got, err := UnmarshalRequest(r.Marshal()[1:])
		return err == nil && got.Client == r.Client && got.ReqID == reqID && bytes.Equal(got.Op, op)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignedBodyBindsFields(t *testing.T) {
	a := &Request{Client: 1, ReqID: 1, Op: []byte("x")}
	b := &Request{Client: 1, ReqID: 2, Op: []byte("x")}
	c := &Request{Client: 2, ReqID: 1, Op: []byte("x")}
	d := &Request{Client: 1, ReqID: 1, Op: []byte("y")}
	bodies := map[string]bool{
		string(a.SignedBody()): true, string(b.SignedBody()): true,
		string(c.SignedBody()): true, string(d.SignedBody()): true,
	}
	if len(bodies) != 4 {
		t.Fatal("signed bodies collide across distinct requests")
	}
}

func TestClientTable(t *testing.T) {
	ct := NewClientTable()
	fresh, cached := ct.Check(1, 1)
	if !fresh || cached != nil {
		t.Fatal("first request not fresh")
	}
	rep := &Reply{ReqID: 1, Result: []byte("r1")}
	ct.Store(1, 1, rep)
	fresh, cached = ct.Check(1, 1)
	if fresh || cached != rep {
		t.Fatal("duplicate not detected")
	}
	fresh, cached = ct.Check(1, 0)
	if fresh || cached != nil {
		t.Fatal("stale request not ignored")
	}
	fresh, _ = ct.Check(1, 2)
	if !fresh {
		t.Fatal("next request not fresh")
	}
	ct.Forget(1)
	if ct.Len() != 0 {
		t.Fatal("forget did not remove entry")
	}
}

func TestChainHash(t *testing.T) {
	var zero [32]byte
	e1 := [32]byte{1}
	e2 := [32]byte{2}
	h1 := ChainHash(zero, e1)
	h2 := ChainHash(h1, e2)
	if h1 == h2 || h1 == zero {
		t.Fatal("degenerate chain hash")
	}
	// Order matters.
	alt := ChainHash(ChainHash(zero, e2), e1)
	if alt == h2 {
		t.Fatal("chain hash commutes; it must not")
	}
}

// TestClientQuorum exercises the closed-loop client against scripted
// replies over simnet.
func TestClientQuorum(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	master := []byte("m")
	const n, f = 4, 1

	clientConn := net.Join(100)
	cside := auth.NewClientSide(master, 100, n)
	replicaConns := make([]transport.Conn, n)
	rsides := make([]*auth.ReplicaSide, n)
	for i := 0; i < n; i++ {
		replicaConns[i] = net.Join(transport.NodeID(i))
		rsides[i] = auth.NewReplicaSide(master, i)
	}
	// Replicas echo a reply on request; replica 3 is Byzantine and lies.
	for i := 0; i < n; i++ {
		idx := i
		replicaConns[i].SetHandler(func(from transport.NodeID, pkt []byte) {
			if len(pkt) == 0 || pkt[0] != KindRequest {
				return
			}
			req, err := UnmarshalRequest(pkt[1:])
			if err != nil {
				return
			}
			if !rsides[idx].VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
				return
			}
			result := append([]byte("ok:"), req.Op...)
			if idx == 3 {
				result = []byte("LIES")
			}
			rep := &Reply{View: 1, Replica: uint32(idx), Slot: 1, ReqID: req.ReqID, Result: result}
			rep.Auth = rsides[idx].TagFor(int64(req.Client), rep.SignedBody())
			replicaConns[idx].Send(from, rep.Marshal())
		})
	}

	cl := NewClient(ClientConfig{
		Conn: clientConn, N: n, F: f, Quorum: 2*f + 1, MatchPosition: true,
		Auth: cside,
		Submit: func(req *Request, retry bool) {
			pkt := req.Marshal()
			for i := 0; i < n; i++ {
				clientConn.Send(transport.NodeID(i), pkt)
			}
		},
	})
	clientConn.SetHandler(func(from transport.NodeID, pkt []byte) { cl.HandlePacket(from, pkt) })

	result, err := cl.Invoke([]byte("hello"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(result) != "ok:hello" {
		t.Fatalf("result = %q", result)
	}
}

// TestClientRejectsForgedReplies ensures unauthenticated replies never
// count toward the quorum.
func TestClientRejectsForgedReplies(t *testing.T) {
	net := simnet.New(simnet.Options{})
	defer net.Close()
	master := []byte("m")
	const n, f = 4, 1
	clientConn := net.Join(100)
	cside := auth.NewClientSide(master, 100, n)

	forger := net.Join(0)
	forger.SetHandler(func(from transport.NodeID, pkt []byte) {
		if len(pkt) == 0 || pkt[0] != KindRequest {
			return
		}
		req, _ := UnmarshalRequest(pkt[1:])
		// Send 4 replies with distinct replica IDs but no valid MACs.
		for i := 0; i < n; i++ {
			rep := &Reply{Replica: uint32(i), ReqID: req.ReqID, Result: []byte("forged"), Auth: make([]byte, 8)}
			forger.Send(from, rep.Marshal())
		}
	})

	cl := NewClient(ClientConfig{
		Conn: clientConn, N: n, F: f, Quorum: 2*f + 1,
		Auth:    cside,
		Timeout: 10 * time.Millisecond,
		Submit: func(req *Request, retry bool) {
			clientConn.Send(0, req.Marshal())
		},
	})
	clientConn.SetHandler(func(from transport.NodeID, pkt []byte) { cl.HandlePacket(from, pkt) })

	if _, err := cl.Invoke([]byte("x"), 100*time.Millisecond); err == nil {
		t.Fatal("client accepted forged replies")
	}
}

func TestEchoApp(t *testing.T) {
	var app EchoApp
	res, undo := app.Execute([]byte("ping"))
	if string(res) != "ping" || undo != nil {
		t.Fatalf("echo = %q, undo non-nil: %t", res, undo != nil)
	}
}
