package replication

import (
	"neobft/internal/crypto/auth"
	"neobft/internal/transport"
)

// NewWiredClient deduplicates the per-protocol client boilerplate: it
// derives the client-side MAC keys from master when cfg.Auth is unset,
// builds the closed-loop Client, and installs its reply handler on
// cfg.Conn. Protocol packages that need to observe non-reply packets
// (Zyzzyva's speculative-response path) keep their own handler and call
// HandlePacket themselves.
func NewWiredClient(cfg ClientConfig, master []byte) *Client {
	if cfg.Auth == nil {
		cfg.Auth = auth.NewClientSide(master, int64(cfg.Conn.ID()), cfg.N)
	}
	cl := NewClient(cfg)
	InstallHandler(cfg.Conn, func(from transport.NodeID, pkt []byte) {
		cl.HandlePacket(from, pkt)
	})
	return cl
}

// InstallHandler is the single place protocol packages install a raw
// packet handler (clients with bespoke dispatch, e.g. Zyzzyva's two-path
// client). Replicas never use it — they receive through a runtime's
// verify/apply pipeline instead.
func InstallHandler(conn transport.Conn, h transport.Handler) {
	conn.SetHandler(h)
}
