// Package zyzzyva implements Zyzzyva (Kotla et al., SOSP '07), the
// speculative BFT baseline of the paper's evaluation. The primary orders
// requests and replicas execute speculatively, responding directly to the
// client: a request completes in three message delays when the client
// receives 3f+1 matching speculative responses. With fewer (but at least
// 2f+1) matching responses the client falls back to the slow path,
// distributing a commit certificate — which is exactly why a single
// non-responding replica (Zyzzyva-F in Fig 7) collapses throughput.
//
// The view-change and fill-hole sub-protocols are out of scope (as in
// the paper's comparison, which exercises the fault-free fast path and
// the faulty-replica slow path).
package zyzzyva

import (
	"sync"
	"time"

	"neobft/internal/batch"
	"neobft/internal/crypto/auth"
	"neobft/internal/metrics"
	"neobft/internal/replication"
	"neobft/internal/runtime"
	"neobft/internal/seqlog"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// Flight-recorder event kind for slow-path commit certificates.
var tkZyzSlowPath = metrics.RegisterTraceKind("zyzzyva_slow_path") // a=seq

// Message kinds.
const (
	kindOrderReq uint8 = replication.KindProtocolBase + iota
	kindSpecResponse
	kindCommit
	kindLocalCommit
	kindCheckpoint
	kindStateFetch
	kindStateSnap
)

// ckptDomain separates Zyzzyva checkpoint authenticators from other
// protocols sharing the seqlog wire helpers.
const ckptDomain = "zyz-ckpt"

// Config configures a Zyzzyva replica.
type Config struct {
	Self, N, F int
	Members    []transport.NodeID
	Conn       transport.Conn
	Auth       auth.Authenticator
	ClientAuth *auth.ReplicaSide
	App        replication.App
	// BatchSize caps requests per order-req (default 8).
	BatchSize int
	// BatchBytes caps the marshaled request payload per order-req
	// (default batch.DefaultMaxBytes).
	BatchBytes int
	// BatchLinger lets the primary defer a below-target batch for up to
	// this long. Zero preserves the cut-immediately behavior.
	BatchLinger time.Duration
	// BatchAdaptive scales the batch-size target with queue depth (see
	// batch.Config.Adaptive). Requires BatchLinger > 0.
	BatchAdaptive bool
	// Window caps outstanding speculative batches (default 2).
	Window int
	// CheckpointInterval is the number of batches between checkpoints
	// (default 128). Stable checkpoints truncate the ordered-batch log
	// and bound the out-of-order buffer.
	CheckpointInterval int
	// Silent makes the replica drop all protocol traffic (the
	// non-responding Byzantine replica of the Zyzzyva-F experiment).
	Silent bool
	// Runtime hosts the replica's event loop and verification workers.
	// If nil, New creates a default runtime over Conn.
	Runtime *runtime.Runtime
	// Metrics is the replica's shared registry (runtime stages plus
	// proto_* series). If nil, the runtime's registry is used.
	Metrics *metrics.Registry
	// Restore, if non-nil, boots the replica from a Persist() blob: the
	// stable checkpoint certificate, history hash and snapshot captured
	// before a crash.
	Restore []byte
}

// Replica is a Zyzzyva replica.
type Replica struct {
	cfg  Config
	conn transport.Conn
	rt   *runtime.Runtime

	mu       sync.Mutex
	view     uint64
	seq      uint64 // primary: last assigned
	lastExec uint64
	history  [32]byte
	// batcher queues client requests at the primary and cuts order-req
	// batches per the shared hybrid policy.
	batcher  *batch.Batcher
	inQueue  map[string]bool
	buffered map[uint64]*orderReq // out-of-order order-reqs, horizon-bounded
	table    *replication.ClientTable
	// maxCC is the highest sequence covered by a commit certificate.
	maxCC uint64

	// log retains executed batches in the live watermark window; stable
	// checkpoints truncate it (and pendingCkpt / buffered entries below
	// the new low watermark).
	log          seqlog.Log[*orderReq]
	ckpt         *seqlog.Engine
	pendingCkpt  map[uint64]*pendingCkpt
	stable       *stableCkpt
	lastFetch    time.Time
	snapInstalls uint64

	executedOps uint64

	// metrics (nil-safe no-ops when unconfigured)
	reg         *metrics.Registry
	mCommits    *metrics.Counter
	mSlowPath   *metrics.Counter
	mAuthFail   *metrics.Counter
	mCkpt       *metrics.Counter
	mTruncated  *metrics.Counter
	mSnapServe  *metrics.Counter
	mSnapInst   *metrics.Counter
	mHorizonRej *metrics.Counter
	gLow        *metrics.Gauge
	gHigh       *metrics.Gauge
	msgCounters map[uint8]*metrics.Counter
	trace       *metrics.Recorder
}

// pendingCkpt is a checkpoint this replica has taken but whose
// certificate has not yet formed.
type pendingCkpt struct {
	seq         uint64
	history     [32]byte
	stateDigest [32]byte
	snapshot    []byte
	digest      [32]byte // seqlog.Digest(ckptDomain, seq, history, stateDigest)
}

// stableCkpt is the latest checkpoint with a 2f+1 certificate.
type stableCkpt struct {
	pendingCkpt
	cert *seqlog.Cert
}

var zyzKindNames = map[uint8]string{
	kindOrderReq: "order_req", kindSpecResponse: "spec_response",
	kindCommit: "commit", kindLocalCommit: "local_commit",
	kindCheckpoint: "checkpoint", kindStateFetch: "state_fetch",
	kindStateSnap: "state_snapshot",
}

type orderReq struct {
	view    uint64
	seq     uint64
	digest  [32]byte
	history [32]byte
	batch   []*replication.Request
	// authOK holds per-request client-MAC verdicts precomputed by the
	// verification stage; nil means verify inline (the primary's own
	// batches take that path).
	authOK []bool
}

// New creates and starts a Zyzzyva replica.
func New(cfg Config) *Replica {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.Window == 0 {
		cfg.Window = 2
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 128
	}
	if cfg.Runtime == nil {
		cfg.Runtime = runtime.New(runtime.Config{Conn: cfg.Conn, Metrics: cfg.Metrics})
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Runtime.Metrics()
	}
	r := &Replica{
		cfg:         cfg,
		conn:        cfg.Conn,
		rt:          cfg.Runtime,
		inQueue:     map[string]bool{},
		buffered:    map[uint64]*orderReq{},
		table:       replication.NewClientTable(),
		ckpt:        seqlog.NewEngine(2*cfg.F + 1),
		pendingCkpt: map[uint64]*pendingCkpt{},
	}
	reg := cfg.Metrics
	r.reg = reg
	r.mCommits = reg.Counter("proto_commits_total")
	r.mSlowPath = reg.Counter("proto_slow_path_total")
	r.mAuthFail = reg.Counter("proto_auth_fail_total")
	r.mCkpt = reg.Counter("proto_checkpoints_total")
	r.mTruncated = reg.Counter("proto_truncated_slots_total")
	r.mSnapServe = reg.Counter("proto_state_snapshots_served_total")
	r.mSnapInst = reg.Counter("proto_state_snapshots_installed_total")
	r.mHorizonRej = reg.Counter("proto_sync_horizon_rejects_total")
	r.gLow = reg.Gauge("proto_log_low_watermark")
	r.gHigh = reg.Gauge("proto_log_high_watermark")
	r.msgCounters = make(map[uint8]*metrics.Counter, len(zyzKindNames)+1)
	r.msgCounters[replication.KindRequest] = reg.Counter("proto_msg_client_request_total")
	for k, name := range zyzKindNames {
		r.msgCounters[k] = reg.Counter("proto_msg_" + name + "_total")
	}
	r.trace = reg.Recorder()
	r.batcher = batch.New(batch.Config{
		MaxCount:  cfg.BatchSize,
		MaxBytes:  cfg.BatchBytes,
		MaxLinger: cfg.BatchLinger,
		Adaptive:  cfg.BatchAdaptive,
		Metrics:   reg,
	})
	if cfg.Restore != nil {
		r.restoreFromPersist(cfg.Restore)
	}
	if cfg.BatchLinger > 0 {
		r.rt.ArmEvery(flushPollInterval(cfg.BatchLinger), r.onBatchPoll)
	}
	r.rt.Start(r)
	return r
}

// Metrics returns the replica's shared metrics registry.
func (r *Replica) Metrics() *metrics.Registry { return r.reg }

// Close stops the replica's runtime.
func (r *Replica) Close() { r.rt.Close() }

// Runtime returns the replica's runtime (for stats and draining).
func (r *Replica) Runtime() *runtime.Runtime { return r.rt }

// Executed returns the number of executed client operations.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executedOps
}

// LowWatermark returns the log's low watermark (last stable checkpoint).
func (r *Replica) LowWatermark() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Low()
}

// HighWatermark returns the highest retained log slot.
func (r *Replica) HighWatermark() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.High()
}

// SnapshotInstalls returns how many snapshot state transfers this
// replica has installed.
func (r *Replica) SnapshotInstalls() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapInstalls
}

func (r *Replica) primary() int    { return int(r.view) % r.cfg.N }
func (r *Replica) isPrimary() bool { return r.primary() == r.cfg.Self }

// horizonLocked is the highest sequence number this replica will buffer
// or count checkpoint votes for: two checkpoint intervals above the last
// stable checkpoint, mirroring PBFT's high watermark H = h + 2K. Caller
// holds r.mu.
func (r *Replica) horizonLocked() uint64 {
	return r.log.Low() + 2*uint64(r.cfg.CheckpointInterval)
}

func (r *Replica) broadcast(pkt []byte) {
	for i, m := range r.cfg.Members {
		if i == r.cfg.Self {
			continue
		}
		r.conn.Send(m, pkt)
	}
}

func orderBody(view, seq uint64, digest, history [32]byte) []byte {
	w := wire.NewWriter(96)
	w.Raw([]byte("zyz-order"))
	w.U64(view)
	w.U64(seq)
	w.Bytes32(digest)
	w.Bytes32(history)
	return w.Bytes()
}

// specBody is the group-verifiable part of a speculative response; 2f+1
// matching authenticators over it form a commit certificate.
func specBody(view, seq uint64, history, digest [32]byte, replica uint32) []byte {
	w := wire.NewWriter(96)
	w.Raw([]byte("zyz-spec"))
	w.U64(view)
	w.U64(seq)
	w.Bytes32(history)
	w.Bytes32(digest)
	w.U32(replica)
	return w.Bytes()
}

func batchDigest(batch []*replication.Request) [32]byte {
	var acc [32]byte
	for _, req := range batch {
		acc = replication.ChainHash(acc, replication.RequestDigest(req))
	}
	return acc
}

func reqKey(c transport.NodeID, id uint64) string {
	w := wire.NewWriter(12)
	w.U32(uint32(c))
	w.U64(id)
	return string(w.Bytes())
}

// --- verify stage (worker goroutines) --------------------------------------

type evRequest struct{ req *replication.Request }

type evOrderReq struct{ o *orderReq }

type evCommit struct {
	view, seq       uint64
	history, digest [32]byte
	valid           int
}

type evCheckpoint struct {
	replica uint32
	seq     uint64
	digest  [32]byte
	tag     []byte
}

type evStateFetch struct{ haveExec uint64 }

type evStateSnap struct{ body []byte }

// VerifyPacket implements runtime.Handler: packet decoding, client MACs,
// the primary's order-req authenticator, per-request client MACs in the
// batch, and commit-certificate parts are all checked off the loop.
func (r *Replica) VerifyPacket(from transport.NodeID, pkt []byte) runtime.Event {
	if r.cfg.Silent || len(pkt) == 0 {
		return nil
	}
	r.msgCounters[pkt[0]].Inc()
	switch pkt[0] {
	case replication.KindRequest:
		req, err := replication.UnmarshalRequest(pkt[1:])
		if err != nil {
			return nil
		}
		if !r.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
			r.mAuthFail.Inc()
			return nil
		}
		return evRequest{req: req}
	case kindOrderReq:
		o := r.verifyOrderReq(pkt[1:])
		if o == nil {
			return nil
		}
		return evOrderReq{o: o}
	case kindCommit:
		return r.verifyCommit(pkt[1:])
	case kindCheckpoint:
		return r.verifyCheckpoint(pkt[1:])
	case kindStateFetch:
		rd := wire.NewReader(pkt[1:])
		have := rd.U64()
		if rd.Done() != nil {
			return nil
		}
		return evStateFetch{haveExec: have}
	case kindStateSnap:
		return evStateSnap{body: append([]byte(nil), pkt[1:]...)}
	}
	return nil
}

// verifyCheckpoint authenticates a checkpoint vote on the workers; the
// loop only pools pre-verified votes.
func (r *Replica) verifyCheckpoint(pkt []byte) runtime.Event {
	rd := wire.NewReader(pkt)
	replica := rd.U32()
	seq := rd.U64()
	history := rd.Bytes32()
	stateD := rd.Bytes32()
	tag := append([]byte(nil), rd.VarBytes()...)
	if rd.Done() != nil || int(replica) >= r.cfg.N {
		return nil
	}
	digest := seqlog.Digest(ckptDomain, seq, history, stateD)
	if !r.cfg.Auth.VerifyVector(int(replica), seqlog.Body(ckptDomain, seq, digest, replica), tag) {
		r.mAuthFail.Inc()
		return nil
	}
	return evCheckpoint{replica: replica, seq: seq, digest: digest, tag: tag}
}

// verifyOrderReq decodes and authenticates an order-req against the
// *claimed* view's primary; apply rejects stale views.
func (r *Replica) verifyOrderReq(pkt []byte) *orderReq {
	rd := wire.NewReader(pkt)
	body := rd.VarBytes()
	tag := rd.VarBytes()
	reqs, ok := batch.Unmarshal(rd)
	if !ok || rd.Done() != nil {
		return nil
	}
	br := wire.NewReader(body)
	if !br.Prefix("zyz-order") {
		return nil
	}
	view := br.U64()
	seq := br.U64()
	digest := br.Bytes32()
	history := br.Bytes32()
	if br.Done() != nil {
		return nil
	}
	if !r.cfg.Auth.VerifyVector(int(view)%r.cfg.N, body, tag) {
		r.mAuthFail.Inc()
		return nil
	}
	if batchDigest(reqs) != digest {
		return nil
	}
	authOK := make([]bool, len(reqs))
	for i, req := range reqs {
		authOK[i] = r.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth)
		if !authOK[i] {
			r.mAuthFail.Inc()
		}
	}
	return &orderReq{view: view, seq: seq, digest: digest, history: history, batch: reqs, authOK: authOK}
}

// verifyCommit counts valid commit-certificate parts; the certificate
// inputs are all carried in the packet, so this is loop-state-free.
func (r *Replica) verifyCommit(pkt []byte) runtime.Event {
	rd := wire.NewReader(pkt)
	view := rd.U64()
	seq := rd.U64()
	history := rd.Bytes32()
	digest := rd.Bytes32()
	np := rd.U32()
	if rd.Err() != nil || np > uint32(r.cfg.N) {
		return nil
	}
	type pt struct {
		rep uint32
		tag []byte
	}
	parts := make([]pt, np)
	for i := range parts {
		parts[i].rep = rd.U32()
		parts[i].tag = rd.VarBytes()
	}
	if rd.Done() != nil {
		return nil
	}
	seen := map[uint32]bool{}
	valid := 0
	for _, p := range parts {
		if int(p.rep) >= r.cfg.N || seen[p.rep] {
			continue
		}
		if !r.cfg.Auth.VerifyVector(int(p.rep), specBody(view, seq, history, digest, p.rep), p.tag) {
			continue
		}
		seen[p.rep] = true
		valid++
	}
	return evCommit{view: view, seq: seq, history: history, digest: digest, valid: valid}
}

// ApplyEvent implements runtime.Handler.
func (r *Replica) ApplyEvent(from transport.NodeID, ev runtime.Event) {
	switch e := ev.(type) {
	case evRequest:
		r.onRequest(e.req)
	case evOrderReq:
		r.onOrderReq(e.o)
	case evCommit:
		r.onCommit(from, e)
	case evCheckpoint:
		r.onCheckpoint(e)
	case evStateFetch:
		r.onStateFetch(from, e.haveExec)
	case evStateSnap:
		r.onStateSnap(e.body)
	}
}

// --- apply stage (loop goroutine) ------------------------------------------

func (r *Replica) onRequest(req *replication.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh, cached := r.table.Check(req.Client, req.ReqID)
	if !fresh {
		if cached != nil {
			r.conn.Send(req.Client, cached.Marshal())
		}
		return
	}
	if !r.isPrimary() {
		// Forward to the primary (client retransmissions broadcast).
		r.conn.Send(r.cfg.Members[r.primary()], req.Marshal())
		return
	}
	key := reqKey(req.Client, req.ReqID)
	if !r.inQueue[key] {
		r.inQueue[key] = true
		r.batcher.Put(req, r.rt.Tracer().ActiveRef())
	}
	r.tryIssueLocked()
}

// flushPollInterval picks how often to poll a lingering batcher: half
// the linger bound, floored at 500µs so tiny lingers do not spin the
// loop.
func flushPollInterval(linger time.Duration) time.Duration {
	d := linger / 2
	if d < 500*time.Microsecond {
		d = 500 * time.Microsecond
	}
	return d
}

// onBatchPoll runs on the runtime loop when a linger bound is set: it
// cuts batches whose oldest request has waited out the linger even if
// no new request arrives to trigger tryIssueLocked.
func (r *Replica) onBatchPoll() {
	r.mu.Lock()
	r.tryIssueLocked()
	r.mu.Unlock()
}

func (r *Replica) tryIssueLocked() {
	if !r.isPrimary() {
		return
	}
	now := time.Now()
	for r.batcher.Ready(now) && r.seq-r.lastExec < uint64(r.cfg.Window) {
		cut, _ := r.batcher.Cut(now)
		r.seq++
		cut.EndOrder(r.rt.Tracer(), r.seq)
		digest := batchDigest(cut.Reqs)
		history := replication.ChainHash(r.history, digest)

		body := orderBody(r.view, r.seq, digest, history)
		w := wire.NewWriter(512)
		w.U8(kindOrderReq)
		w.VarBytes(body)
		w.VarBytes(r.cfg.Auth.TagVector(body))
		batch.MarshalInto(w, cut.Reqs)
		r.broadcast(w.Bytes())
		// The primary executes speculatively too.
		r.executeLocked(&orderReq{view: r.view, seq: r.seq, digest: digest, history: history, batch: cut.Reqs})
	}
}

func (r *Replica) onOrderReq(o *orderReq) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if o.view != r.view || r.isPrimary() {
		return
	}
	if o.seq != r.lastExec+1 {
		if o.seq > r.horizonLocked() {
			// The primary is ordering beyond our watermark window: we are
			// too far behind to catch up by buffering (the group will have
			// truncated these slots' predecessors). Drop the batch and
			// fetch the stable snapshot instead.
			r.mHorizonRej.Inc()
			r.maybeFetchLocked(r.primary())
			return
		}
		if o.seq > r.lastExec {
			r.buffered[o.seq] = o
		}
		return
	}
	r.executeLocked(o)
	for {
		next, ok := r.buffered[r.lastExec+1]
		if !ok {
			break
		}
		delete(r.buffered, next.seq)
		r.executeLocked(next)
	}
}

// executeLocked speculatively executes a batch in order and sends
// speculative responses straight to the clients. Caller holds r.mu.
func (r *Replica) executeLocked(o *orderReq) {
	// Verify the primary extended the history correctly.
	want := replication.ChainHash(r.history, o.digest)
	if o.history != want {
		return
	}
	r.history = o.history
	r.lastExec = o.seq
	r.log.Append(o)
	r.gHigh.Set(int64(r.log.High()))
	groupTag := r.cfg.Auth.TagVector(specBody(o.view, o.seq, o.history, o.digest, uint32(r.cfg.Self)))
	for i, req := range o.batch {
		// Pre-verified by the worker stage for backup batches; the
		// primary checks its own (already once-verified) batch inline.
		authOK := o.authOK != nil && o.authOK[i]
		if o.authOK == nil {
			authOK = r.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth)
		}
		if !authOK {
			continue
		}
		fresh, cached := r.table.Check(req.Client, req.ReqID)
		if !fresh {
			if cached != nil {
				r.conn.Send(req.Client, cached.Marshal())
			}
			continue
		}
		result, _ := r.cfg.App.Execute(req.Op)
		r.executedOps++
		r.mCommits.Inc()
		rep := &replication.Reply{
			View: o.view, Replica: uint32(r.cfg.Self), Slot: o.seq,
			LogHash: o.history, ReqID: req.ReqID, Result: result, Speculative: true,
		}
		rep.Auth = r.cfg.ClientAuth.TagFor(int64(req.Client), rep.SignedBody())
		r.table.Store(req.Client, req.ReqID, rep)

		w := wire.NewWriter(256)
		w.U8(kindSpecResponse)
		w.VarBytes(rep.Marshal()[1:]) // the reply, envelope stripped
		w.Bytes32(o.digest)
		w.VarBytes(groupTag)
		r.conn.Send(req.Client, w.Bytes())
	}
	delete(r.buffered, o.seq)
	if o.seq%uint64(r.cfg.CheckpointInterval) == 0 {
		if st := r.ckpt.Stable(); st == nil || o.seq > st.Slot {
			r.captureCheckpointLocked(o.seq)
		}
	}
	r.tryIssueLocked()
}

// onCommit processes a client's commit certificate: 2f+1 matching
// speculative-response authenticators (§2.1; slow path). The parts were
// counted by the verification stage.
func (r *Replica) onCommit(from transport.NodeID, e evCommit) {
	if e.valid < 2*r.cfg.F+1 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.seq > r.maxCC {
		r.maxCC = e.seq
		r.mSlowPath.Inc()
		r.trace.Record(tkZyzSlowPath, e.seq, 0)
	}
	// LOCAL-COMMIT back to the client.
	w := wire.NewWriter(64)
	w.U8(kindLocalCommit)
	w.U64(e.view)
	w.U64(e.seq)
	w.U32(uint32(r.cfg.Self))
	body := w.Bytes()
	mac := r.cfg.ClientAuth.TagFor(int64(from), body)
	out := wire.NewWriter(len(body) + 16)
	out.Raw(body)
	out.VarBytes(mac)
	r.conn.Send(from, out.Bytes())
}
