// Package zyzzyva implements Zyzzyva (Kotla et al., SOSP '07), the
// speculative BFT baseline of the paper's evaluation. The primary orders
// requests and replicas execute speculatively, responding directly to the
// client: a request completes in three message delays when the client
// receives 3f+1 matching speculative responses. With fewer (but at least
// 2f+1) matching responses the client falls back to the slow path,
// distributing a commit certificate — which is exactly why a single
// non-responding replica (Zyzzyva-F in Fig 7) collapses throughput.
//
// The view-change and fill-hole sub-protocols are out of scope (as in
// the paper's comparison, which exercises the fault-free fast path and
// the faulty-replica slow path).
package zyzzyva

import (
	"sync"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// Message kinds.
const (
	kindOrderReq uint8 = replication.KindProtocolBase + iota
	kindSpecResponse
	kindCommit
	kindLocalCommit
)

// Config configures a Zyzzyva replica.
type Config struct {
	Self, N, F int
	Members    []transport.NodeID
	Conn       transport.Conn
	Auth       auth.Authenticator
	ClientAuth *auth.ReplicaSide
	App        replication.App
	// BatchSize caps requests per order-req (default 8).
	BatchSize int
	// Window caps outstanding speculative batches (default 2).
	Window int
	// Silent makes the replica drop all protocol traffic (the
	// non-responding Byzantine replica of the Zyzzyva-F experiment).
	Silent bool
}

// Replica is a Zyzzyva replica.
type Replica struct {
	cfg  Config
	conn transport.Conn

	mu       sync.Mutex
	view     uint64
	seq      uint64 // primary: last assigned
	lastExec uint64
	history  [32]byte
	pending  []*replication.Request
	inQueue  map[string]bool
	buffered map[uint64]*orderReq // out-of-order order-reqs
	table    *replication.ClientTable
	// maxCC is the highest sequence covered by a commit certificate.
	maxCC uint64

	executedOps uint64
}

type orderReq struct {
	view    uint64
	seq     uint64
	digest  [32]byte
	history [32]byte
	batch   []*replication.Request
}

// New creates and starts a Zyzzyva replica.
func New(cfg Config) *Replica {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.Window == 0 {
		cfg.Window = 2
	}
	r := &Replica{
		cfg:      cfg,
		conn:     cfg.Conn,
		inQueue:  map[string]bool{},
		buffered: map[uint64]*orderReq{},
		table:    replication.NewClientTable(),
	}
	cfg.Conn.SetHandler(r.handle)
	return r
}

// Close is a no-op (Zyzzyva replicas run no timers).
func (r *Replica) Close() {}

// Executed returns the number of executed client operations.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executedOps
}

func (r *Replica) primary() int    { return int(r.view) % r.cfg.N }
func (r *Replica) isPrimary() bool { return r.primary() == r.cfg.Self }

func (r *Replica) broadcast(pkt []byte) {
	for i, m := range r.cfg.Members {
		if i == r.cfg.Self {
			continue
		}
		r.conn.Send(m, pkt)
	}
}

func orderBody(view, seq uint64, digest, history [32]byte) []byte {
	w := wire.NewWriter(96)
	w.Raw([]byte("zyz-order"))
	w.U64(view)
	w.U64(seq)
	w.Bytes32(digest)
	w.Bytes32(history)
	return w.Bytes()
}

// specBody is the group-verifiable part of a speculative response; 2f+1
// matching authenticators over it form a commit certificate.
func specBody(view, seq uint64, history, digest [32]byte, replica uint32) []byte {
	w := wire.NewWriter(96)
	w.Raw([]byte("zyz-spec"))
	w.U64(view)
	w.U64(seq)
	w.Bytes32(history)
	w.Bytes32(digest)
	w.U32(replica)
	return w.Bytes()
}

func batchDigest(batch []*replication.Request) [32]byte {
	var acc [32]byte
	for _, req := range batch {
		acc = replication.ChainHash(acc, replication.RequestDigest(req))
	}
	return acc
}

func reqKey(c transport.NodeID, id uint64) string {
	w := wire.NewWriter(12)
	w.U32(uint32(c))
	w.U64(id)
	return string(w.Bytes())
}

func (r *Replica) handle(from transport.NodeID, pkt []byte) {
	if r.cfg.Silent || len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case replication.KindRequest:
		r.onRequest(pkt[1:])
	case kindOrderReq:
		r.onOrderReq(pkt[1:])
	case kindCommit:
		r.onCommit(from, pkt[1:])
	}
}

func (r *Replica) onRequest(body []byte) {
	req, err := replication.UnmarshalRequest(body)
	if err != nil {
		return
	}
	if !r.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh, cached := r.table.Check(req.Client, req.ReqID)
	if !fresh {
		if cached != nil {
			r.conn.Send(req.Client, cached.Marshal())
		}
		return
	}
	if !r.isPrimary() {
		// Forward to the primary (client retransmissions broadcast).
		r.conn.Send(r.cfg.Members[r.primary()], append([]byte{replication.KindRequest}, body...))
		return
	}
	key := reqKey(req.Client, req.ReqID)
	if !r.inQueue[key] {
		r.inQueue[key] = true
		r.pending = append(r.pending, req)
	}
	r.tryIssueLocked()
}

func (r *Replica) tryIssueLocked() {
	if !r.isPrimary() {
		return
	}
	for len(r.pending) > 0 && r.seq-r.lastExec < uint64(r.cfg.Window) {
		n := len(r.pending)
		if n > r.cfg.BatchSize {
			n = r.cfg.BatchSize
		}
		batch := r.pending[:n]
		r.pending = r.pending[n:]
		r.seq++
		digest := batchDigest(batch)
		history := replication.ChainHash(r.history, digest)

		body := orderBody(r.view, r.seq, digest, history)
		w := wire.NewWriter(512)
		w.U8(kindOrderReq)
		w.VarBytes(body)
		w.VarBytes(r.cfg.Auth.TagVector(body))
		w.U32(uint32(len(batch)))
		for _, req := range batch {
			w.VarBytes(req.Marshal()[1:])
		}
		r.broadcast(w.Bytes())
		// The primary executes speculatively too.
		r.executeLocked(&orderReq{view: r.view, seq: r.seq, digest: digest, history: history, batch: batch})
	}
}

func (r *Replica) onOrderReq(pkt []byte) {
	rd := wire.NewReader(pkt)
	body := rd.VarBytes()
	tag := rd.VarBytes()
	nb := rd.U32()
	if rd.Err() != nil || nb > 1<<16 {
		return
	}
	batch := make([]*replication.Request, nb)
	for i := range batch {
		req, err := replication.UnmarshalRequest(rd.VarBytes())
		if err != nil {
			return
		}
		batch[i] = req
	}
	if rd.Done() != nil {
		return
	}
	br := wire.NewReader(body)
	if !br.Prefix("zyz-order") {
		return
	}
	view := br.U64()
	seq := br.U64()
	digest := br.Bytes32()
	history := br.Bytes32()
	if br.Done() != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if view != r.view || r.isPrimary() {
		return
	}
	if !r.cfg.Auth.VerifyVector(r.primary(), body, tag) {
		return
	}
	if batchDigest(batch) != digest {
		return
	}
	o := &orderReq{view: view, seq: seq, digest: digest, history: history, batch: batch}
	if seq != r.lastExec+1 {
		if seq > r.lastExec {
			r.buffered[seq] = o
		}
		return
	}
	r.executeLocked(o)
	for {
		next, ok := r.buffered[r.lastExec+1]
		if !ok {
			break
		}
		delete(r.buffered, next.seq)
		r.executeLocked(next)
	}
}

// executeLocked speculatively executes a batch in order and sends
// speculative responses straight to the clients. Caller holds r.mu.
func (r *Replica) executeLocked(o *orderReq) {
	// Verify the primary extended the history correctly.
	want := replication.ChainHash(r.history, o.digest)
	if o.history != want {
		return
	}
	r.history = o.history
	r.lastExec = o.seq
	groupTag := r.cfg.Auth.TagVector(specBody(o.view, o.seq, o.history, o.digest, uint32(r.cfg.Self)))
	for _, req := range o.batch {
		if !r.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
			continue
		}
		fresh, cached := r.table.Check(req.Client, req.ReqID)
		if !fresh {
			if cached != nil {
				r.conn.Send(req.Client, cached.Marshal())
			}
			continue
		}
		result, _ := r.cfg.App.Execute(req.Op)
		r.executedOps++
		rep := &replication.Reply{
			View: o.view, Replica: uint32(r.cfg.Self), Slot: o.seq,
			LogHash: o.history, ReqID: req.ReqID, Result: result, Speculative: true,
		}
		rep.Auth = r.cfg.ClientAuth.TagFor(int64(req.Client), rep.SignedBody())
		r.table.Store(req.Client, req.ReqID, rep)

		w := wire.NewWriter(256)
		w.U8(kindSpecResponse)
		w.VarBytes(rep.Marshal()[1:]) // the reply, envelope stripped
		w.Bytes32(o.digest)
		w.VarBytes(groupTag)
		r.conn.Send(req.Client, w.Bytes())
	}
	delete(r.buffered, o.seq)
	r.tryIssueLocked()
}

// onCommit processes a client's commit certificate: 2f+1 matching
// speculative-response authenticators (§2.1; slow path).
func (r *Replica) onCommit(from transport.NodeID, pkt []byte) {
	rd := wire.NewReader(pkt)
	view := rd.U64()
	seq := rd.U64()
	history := rd.Bytes32()
	digest := rd.Bytes32()
	np := rd.U32()
	if rd.Err() != nil || np > uint32(r.cfg.N) {
		return
	}
	type pt struct {
		rep uint32
		tag []byte
	}
	parts := make([]pt, np)
	for i := range parts {
		parts[i].rep = rd.U32()
		parts[i].tag = rd.VarBytes()
	}
	if rd.Done() != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[uint32]bool{}
	valid := 0
	for _, p := range parts {
		if int(p.rep) >= r.cfg.N || seen[p.rep] {
			continue
		}
		if !r.cfg.Auth.VerifyVector(int(p.rep), specBody(view, seq, history, digest, p.rep), p.tag) {
			continue
		}
		seen[p.rep] = true
		valid++
	}
	if valid < 2*r.cfg.F+1 {
		return
	}
	if seq > r.maxCC {
		r.maxCC = seq
	}
	// LOCAL-COMMIT back to the client.
	w := wire.NewWriter(64)
	w.U8(kindLocalCommit)
	w.U64(view)
	w.U64(seq)
	w.U32(uint32(r.cfg.Self))
	body := w.Bytes()
	mac := r.cfg.ClientAuth.TagFor(int64(from), body)
	out := wire.NewWriter(len(body) + 16)
	out.Raw(body)
	out.VarBytes(mac)
	r.conn.Send(from, out.Bytes())
}
