package zyzzyva

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/simnet"
	"neobft/internal/transport"
)

type counterApp struct {
	mu  sync.Mutex
	sum int64
}

func (a *counterApp) Execute(op []byte) ([]byte, func()) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(op) > 0 {
		a.sum += int64(op[0])
	}
	return []byte(fmt.Sprintf("%d", a.sum)), nil
}

type cluster struct {
	net      *simnet.Network
	replicas []*Replica
	members  []transport.NodeID
	n, f     int
}

func newCluster(t *testing.T, n int, silentReplica int) *cluster {
	t.Helper()
	c := &cluster{net: simnet.New(simnet.Options{}), n: n, f: (n - 1) / 3}
	t.Cleanup(c.net.Close)
	c.members = make([]transport.NodeID, n)
	for i := range c.members {
		c.members[i] = transport.NodeID(i + 1)
	}
	for i := 0; i < n; i++ {
		r := New(Config{
			Self: i, N: n, F: c.f,
			Members:    c.members,
			Conn:       c.net.Join(c.members[i]),
			Auth:       auth.NewHMACAuth([]byte("replica-master"), i, n),
			ClientAuth: auth.NewReplicaSide([]byte("client-master"), i),
			App:        &counterApp{},
			Silent:     i == silentReplica,
		})
		t.Cleanup(r.Close)
		c.replicas = append(c.replicas, r)
	}
	return c
}

func (c *cluster) client(id int, specTimeout time.Duration) *Client {
	return NewClient(c.net.Join(transport.NodeID(100+id)), []byte("client-master"),
		c.n, c.f, c.members, specTimeout, replication.Tuning{Timeout: 100 * time.Millisecond})
}

func TestFastPath(t *testing.T) {
	c := newCluster(t, 4, -1)
	cl := c.client(0, 50*time.Millisecond)
	for i := 1; i <= 20; i++ {
		res, err := cl.Invoke([]byte{1}, 5*time.Second)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if string(res) != fmt.Sprintf("%d", i) {
			t.Fatalf("op %d: result %q", i, res)
		}
	}
	fast, slow := cl.FastSlowCounts()
	if fast != 20 || slow != 0 {
		t.Fatalf("fast=%d slow=%d; all fault-free ops must take the fast path", fast, slow)
	}
}

func TestSlowPathWithSilentReplica(t *testing.T) {
	// Replica 3 never responds: the fast path cannot complete and every
	// operation pays the speculative timeout plus the commit round
	// (Zyzzyva-F, Fig 7).
	c := newCluster(t, 4, 3)
	cl := c.client(0, 10*time.Millisecond)
	start := time.Now()
	for i := 1; i <= 5; i++ {
		res, err := cl.Invoke([]byte{1}, 10*time.Second)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if string(res) != fmt.Sprintf("%d", i) {
			t.Fatalf("op %d: result %q", i, res)
		}
	}
	elapsed := time.Since(start)
	fast, slow := cl.FastSlowCounts()
	if slow != 5 || fast != 0 {
		t.Fatalf("fast=%d slow=%d; a silent replica must force the slow path", fast, slow)
	}
	if elapsed < 5*10*time.Millisecond {
		t.Fatalf("ops completed in %v; each must wait out the speculative timeout", elapsed)
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newCluster(t, 4, -1)
	const clients, each = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cl := c.client(i, 50*time.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := cl.Invoke([]byte{1}, 10*time.Second); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// All correct replicas executed everything (speculative execution is
	// immediate).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, r := range c.replicas {
			if r.Executed() >= clients*each {
				done++
			}
		}
		if done == c.n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("replicas did not execute all operations")
}

func TestHistoryChainVerification(t *testing.T) {
	// A forged order-req with a wrong history hash is rejected.
	c := newCluster(t, 4, -1)
	cl := c.client(0, 50*time.Millisecond)
	if _, err := cl.Invoke([]byte{1}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// All replicas have lastExec 1; a bogus order-req for seq 2 with a
	// broken chain must not execute.
	before := c.replicas[1].Executed()
	evil := c.net.Join(999)
	w := newForgedOrderReq()
	evil.Send(c.members[1], w)
	time.Sleep(20 * time.Millisecond)
	if c.replicas[1].Executed() != before {
		t.Fatal("forged order-req executed")
	}
}

func newForgedOrderReq() []byte {
	// Syntactically plausible but unauthenticated order-req.
	body := orderBody(0, 2, [32]byte{1}, [32]byte{2})
	w := make([]byte, 0, 256)
	w = append(w, kindOrderReq)
	w = append32(w, body)
	w = append32(w, make([]byte, 32)) // bogus tag
	w = append(w, 0, 0, 0, 0)         // zero batch entries... length prefix
	return w
}

func append32(buf, b []byte) []byte {
	buf = append(buf, byte(len(b)), byte(len(b)>>8), byte(len(b)>>16), byte(len(b)>>24))
	return append(buf, b...)
}
