package zyzzyva

import (
	"crypto/sha256"
	"time"

	"neobft/internal/replication"
	"neobft/internal/seqlog"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// Zyzzyva checkpoints (Kotla et al. §4.4), built on the shared seqlog
// checkpoint engine. Every CheckpointInterval batches each replica
// snapshots its state (application plus client table), broadcasts a
// checkpoint vote over ⟨seq, history, state-digest⟩, and collects 2f+1
// matching votes into a stable certificate. Stability truncates the
// ordered-batch log below the checkpoint, bounding replica memory; the
// history hash travels inside the checkpoint digest so a replica
// installing a snapshot can resume the speculative hash chain from the
// certified point.

// fetchCooldown rate-limits state-fetch requests so a fast primary (or a
// flood of ahead votes) does not trigger one fetch per packet.
const fetchCooldown = 100 * time.Millisecond

// captureCheckpointLocked runs after executing an interval boundary:
// capture the snapshot, vote, and broadcast the checkpoint message.
// Caller holds r.mu.
func (r *Replica) captureCheckpointLocked(seq uint64) {
	snap := replication.CaptureSnapshot(r.cfg.App, r.table)
	stateD := sha256.Sum256(snap)
	p := &pendingCkpt{
		seq:         seq,
		history:     r.history,
		stateDigest: stateD,
		snapshot:    snap,
		digest:      seqlog.Digest(ckptDomain, seq, r.history, stateD),
	}
	r.pendingCkpt[seq] = p
	r.mCkpt.Inc()

	body := seqlog.Body(ckptDomain, seq, p.digest, uint32(r.cfg.Self))
	tag := r.cfg.Auth.TagVector(body)
	w := wire.NewWriter(160)
	w.U8(kindCheckpoint)
	w.U32(uint32(r.cfg.Self))
	w.U64(seq)
	w.Bytes32(p.history)
	w.Bytes32(stateD)
	w.VarBytes(tag)
	r.broadcast(w.Bytes())
	if cert := r.ckpt.Add(seq, uint32(r.cfg.Self), p.digest, tag); cert != nil {
		r.advanceStableLocked(cert)
	}
}

func (r *Replica) onCheckpoint(e evCheckpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := uint64(r.cfg.CheckpointInterval)
	if e.seq == 0 || e.seq%k != 0 {
		return
	}
	if st := r.ckpt.Stable(); st != nil && e.seq <= st.Slot {
		return
	}
	if e.seq > r.horizonLocked() {
		// Don't pool votes for slots beyond the watermark window: a
		// Byzantine replica could otherwise grow the vote map without
		// bound. Catch-up is driven by the primary's order-reqs landing
		// beyond the horizon (onOrderReq), not by votes.
		r.mHorizonRej.Inc()
		return
	}
	if cert := r.ckpt.Add(e.seq, e.replica, e.digest, e.tag); cert != nil {
		r.advanceStableLocked(cert)
	}
}

// advanceStableLocked reacts to a newly formed stable certificate:
// truncate if the local state matches, or fetch the snapshot if the
// quorum checkpointed a state we never reached. Caller holds r.mu.
func (r *Replica) advanceStableLocked(cert *seqlog.Cert) {
	p := r.pendingCkpt[cert.Slot]
	if p != nil && p.digest == cert.Digest {
		r.stable = &stableCkpt{pendingCkpt: *p, cert: cert}
		dropped := r.log.TruncateTo(cert.Slot)
		r.mTruncated.Add(uint64(dropped))
		for s := range r.pendingCkpt {
			if s <= cert.Slot {
				delete(r.pendingCkpt, s)
			}
		}
		for s := range r.buffered {
			if s <= cert.Slot {
				delete(r.buffered, s)
			}
		}
		r.gLow.Set(int64(r.log.Low()))
		r.gHigh.Set(int64(r.log.High()))
		return
	}
	// 2f+1 replicas checkpointed a state we do not hold.
	r.maybeFetchLocked(int(cert.Parts[0].Replica))
}

// maybeFetchLocked sends a rate-limited state-fetch to rep. Caller holds
// r.mu.
func (r *Replica) maybeFetchLocked(rep int) {
	if rep < 0 || rep >= r.cfg.N || rep == r.cfg.Self {
		return
	}
	if time.Since(r.lastFetch) < fetchCooldown {
		return
	}
	r.lastFetch = time.Now()
	w := wire.NewWriter(16)
	w.U8(kindStateFetch)
	w.U64(r.lastExec)
	r.conn.Send(r.cfg.Members[rep], w.Bytes())
}

func (r *Replica) onStateFetch(from transport.NodeID, haveExec uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stable == nil || r.stable.seq <= haveExec {
		return
	}
	r.mSnapServe.Inc()
	w := wire.NewWriter(256 + len(r.stable.snapshot))
	w.U8(kindStateSnap)
	w.VarBytes(r.stable.cert.Marshal())
	w.Bytes32(r.stable.history)
	w.VarBytes(r.stable.snapshot)
	r.conn.Send(from, w.Bytes())
}

// onStateSnap installs a snapshot state transfer. The certificate's 2f+1
// authenticated votes bind both the snapshot digest and the history
// hash, so the speculative chain resumes from a certified point.
func (r *Replica) onStateSnap(body []byte) {
	rd := wire.NewReader(body)
	certB := rd.VarBytes()
	history := rd.Bytes32()
	snap := append([]byte(nil), rd.VarBytes()...)
	if rd.Done() != nil {
		return
	}
	cert, err := seqlog.UnmarshalCert(certB)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cert.Slot <= r.lastExec {
		return
	}
	r.installSnapshotLocked(cert, history, snap)
}

// installSnapshotLocked verifies a checkpoint certificate against its
// history hash and snapshot and, if sound, adopts the checkpointed state
// wholesale. Shared tail of snapshot state transfer (onStateSnap) and
// crash-restart recovery (Config.Restore). Caller holds r.mu.
func (r *Replica) installSnapshotLocked(cert *seqlog.Cert, history [32]byte, snap []byte) bool {
	if !cert.Verify(ckptDomain, r.cfg.N, 2*r.cfg.F+1, func(rep uint32, b, tag []byte) bool {
		return r.cfg.Auth.VerifyVector(int(rep), b, tag)
	}) {
		return false
	}
	stateD := sha256.Sum256(snap)
	if cert.Digest != seqlog.Digest(ckptDomain, cert.Slot, history, stateD) {
		return false
	}
	if replication.InstallSnapshot(r.cfg.App, r.table, snap) != nil {
		return false
	}
	r.table.Reauth(uint32(r.cfg.Self), func(c transport.NodeID, b []byte) []byte {
		return r.cfg.ClientAuth.TagFor(int64(c), b)
	})
	r.log.Reset(cert.Slot)
	r.lastExec = cert.Slot
	if r.seq < cert.Slot {
		r.seq = cert.Slot
	}
	r.history = history
	r.stable = &stableCkpt{
		pendingCkpt: pendingCkpt{seq: cert.Slot, history: history, stateDigest: stateD, snapshot: snap, digest: cert.Digest},
		cert:        cert,
	}
	r.ckpt.SetStable(cert)
	for s := range r.pendingCkpt {
		if s <= cert.Slot {
			delete(r.pendingCkpt, s)
		}
	}
	for s := range r.buffered {
		if s <= cert.Slot {
			delete(r.buffered, s)
		}
	}
	r.snapInstalls++
	r.mSnapInst.Inc()
	r.gLow.Set(int64(r.log.Low()))
	r.gHigh.Set(int64(r.log.High()))
	// Buffered order-reqs above the checkpoint may now be executable.
	for {
		next, ok := r.buffered[r.lastExec+1]
		if !ok {
			break
		}
		delete(r.buffered, next.seq)
		r.executeLocked(next)
	}
	return true
}

// Persist captures the replica's durable recovery state: the latest
// stable checkpoint certificate, its history hash, and the snapshot. A
// replica restarted with this blob (Config.Restore) resumes the
// speculative chain from the certified point; nil means no checkpoint
// is stable yet.
func (r *Replica) Persist() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stable == nil {
		return nil
	}
	w := wire.NewWriter(256 + len(r.stable.snapshot))
	w.VarBytes(r.stable.cert.Marshal())
	w.Bytes32(r.stable.history)
	w.VarBytes(r.stable.snapshot)
	return w.Bytes()
}

// restoreFromPersist boots from a Persist blob. Called from New before
// the runtime starts.
func (r *Replica) restoreFromPersist(blob []byte) {
	rd := wire.NewReader(blob)
	certB := rd.VarBytes()
	history := rd.Bytes32()
	snap := append([]byte(nil), rd.VarBytes()...)
	if rd.Done() != nil {
		return
	}
	cert, err := seqlog.UnmarshalCert(certB)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.installSnapshotLocked(cert, history, snap)
}
