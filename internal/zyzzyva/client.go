package zyzzyva

import (
	"fmt"
	"sync"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// Client implements Zyzzyva's two-path client protocol: complete on 3f+1
// matching speculative responses; after SpecTimeout, assemble a commit
// certificate from 2f+1 matching responses, distribute it, and complete
// on 2f+1 local-commits.
type Client struct {
	conn    transport.Conn
	members []transport.NodeID
	n, f    int
	cauth   *auth.ClientSide
	timeout time.Duration
	// SpecTimeout is how long the fast path waits for all 3f+1
	// responses before falling back (the dominant cost of Zyzzyva-F).
	specTimeout time.Duration

	mu      sync.Mutex
	reqID   uint64
	pending *pendingOp

	fastPath uint64
	slowPath uint64
}

type specKey struct {
	view    uint64
	seq     uint64
	history [32]byte
	result  string
}

type pendingOp struct {
	reqID    uint64
	byKey    map[specKey]map[uint32][]byte // key → replica → group tag
	digests  map[specKey][32]byte
	commits  map[uint32]bool // local-commits
	ccSeq    uint64
	ccSent   bool
	done     chan []byte
	resultOf map[specKey][]byte
}

// NewClient creates a Zyzzyva client.
func NewClient(conn transport.Conn, master []byte, n, f int, members []transport.NodeID, specTimeout, retransmit time.Duration) *Client {
	c := &Client{
		conn: conn, members: members, n: n, f: f,
		cauth:       auth.NewClientSide(master, int64(conn.ID()), n),
		timeout:     retransmit,
		specTimeout: specTimeout,
	}
	replication.InstallHandler(conn, c.handle)
	return c
}

// ID returns the client's node ID.
func (c *Client) ID() transport.NodeID { return c.conn.ID() }

// FastSlowCounts reports how many operations completed on each path.
func (c *Client) FastSlowCounts() (fast, slow uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fastPath, c.slowPath
}

// Invoke executes one operation.
func (c *Client) Invoke(op []byte, deadline time.Duration) ([]byte, error) {
	c.mu.Lock()
	c.reqID++
	req := &replication.Request{Client: c.conn.ID(), ReqID: c.reqID, Op: op}
	req.Auth = c.cauth.TagVector(req.SignedBody())
	p := &pendingOp{
		reqID:    req.ReqID,
		byKey:    map[specKey]map[uint32][]byte{},
		digests:  map[specKey][32]byte{},
		commits:  map[uint32]bool{},
		resultOf: map[specKey][]byte{},
		done:     make(chan []byte, 1),
	}
	c.pending = p
	c.mu.Unlock()

	pkt := req.Marshal()
	c.conn.Send(c.members[0], pkt) // primary of view 0

	spec := time.NewTimer(c.specTimeout)
	defer spec.Stop()
	retrans := time.NewTimer(c.timeout)
	defer retrans.Stop()
	overall := time.NewTimer(deadline)
	defer overall.Stop()
	for {
		select {
		case result := <-p.done:
			c.mu.Lock()
			c.pending = nil
			c.mu.Unlock()
			return result, nil
		case <-spec.C:
			// Fast path expired: try the commit-certificate slow path.
			c.mu.Lock()
			c.trySlowPathLocked(p)
			c.mu.Unlock()
		case <-retrans.C:
			for _, m := range c.members {
				c.conn.Send(m, pkt)
			}
			retrans.Reset(c.timeout)
		case <-overall.C:
			c.mu.Lock()
			c.pending = nil
			c.mu.Unlock()
			return nil, fmt.Errorf("zyzzyva client %d: request %d timed out", c.conn.ID(), req.ReqID)
		}
	}
}

func (c *Client) handle(from transport.NodeID, pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case kindSpecResponse:
		c.onSpecResponse(pkt[1:])
	case replication.KindReply:
		// Cached reply for a duplicate: treat as a speculative response
		// without a certificate contribution.
		if rep, err := replication.UnmarshalReply(pkt[1:]); err == nil {
			c.onReply(rep, [32]byte{}, nil)
		}
	case kindLocalCommit:
		c.onLocalCommit(pkt[1:])
	}
}

func (c *Client) onSpecResponse(body []byte) {
	rd := wire.NewReader(body)
	repBytes := rd.VarBytes()
	digest := rd.Bytes32()
	groupTag := append([]byte(nil), rd.VarBytes()...)
	if rd.Done() != nil {
		return
	}
	rep, err := replication.UnmarshalReply(repBytes)
	if err != nil {
		return
	}
	c.onReply(rep, digest, groupTag)
}

func (c *Client) onReply(rep *replication.Reply, digest [32]byte, groupTag []byte) {
	if int(rep.Replica) >= c.n {
		return
	}
	if !c.cauth.VerifyFrom(int(rep.Replica), rep.SignedBody(), rep.Auth) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pending
	if p == nil || rep.ReqID != p.reqID {
		return
	}
	key := specKey{view: rep.View, seq: rep.Slot, history: rep.LogHash, result: string(rep.Result)}
	m := p.byKey[key]
	if m == nil {
		m = map[uint32][]byte{}
		p.byKey[key] = m
	}
	m[rep.Replica] = groupTag
	p.digests[key] = digest
	p.resultOf[key] = rep.Result
	if len(m) >= 3*c.f+1 {
		c.fastPath++
		select {
		case p.done <- rep.Result:
		default:
		}
	}
}

// trySlowPathLocked sends the commit certificate if some response key has
// at least 2f+1 matches. Caller holds c.mu.
func (c *Client) trySlowPathLocked(p *pendingOp) {
	if p.ccSent {
		return
	}
	for key, m := range p.byKey {
		withTag := 0
		for _, tag := range m {
			if tag != nil {
				withTag++
			}
		}
		if withTag < 2*c.f+1 {
			continue
		}
		p.ccSent = true
		p.ccSeq = key.seq
		w := wire.NewWriter(512)
		w.U8(kindCommit)
		w.U64(key.view)
		w.U64(key.seq)
		w.Bytes32(key.history)
		w.Bytes32(p.digests[key])
		cnt := 0
		var parts []struct {
			rep uint32
			tag []byte
		}
		for rep, tag := range m {
			if tag == nil || cnt >= 2*c.f+1 {
				continue
			}
			parts = append(parts, struct {
				rep uint32
				tag []byte
			}{rep, tag})
			cnt++
		}
		w.U32(uint32(len(parts)))
		for _, pp := range parts {
			w.U32(pp.rep)
			w.VarBytes(pp.tag)
		}
		p.resultOf[specKey{}] = p.resultOf[key] // remember the committed result
		for _, mm := range c.members {
			c.conn.Send(mm, w.Bytes())
		}
		return
	}
}

func (c *Client) onLocalCommit(body []byte) {
	// Reconstruct the signed body: kind byte + fields.
	rd := wire.NewReader(body)
	view := rd.U64()
	seq := rd.U64()
	replica := rd.U32()
	mac := rd.VarBytes()
	if rd.Done() != nil || int(replica) >= c.n {
		return
	}
	signed := wire.NewWriter(64)
	signed.U8(kindLocalCommit)
	signed.U64(view)
	signed.U64(seq)
	signed.U32(replica)
	if !c.cauth.VerifyFrom(int(replica), signed.Bytes(), mac) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pending
	if p == nil || !p.ccSent || seq != p.ccSeq {
		return
	}
	p.commits[replica] = true
	if len(p.commits) >= 2*c.f+1 {
		c.slowPath++
		select {
		case p.done <- p.resultOf[specKey{}]:
		default:
		}
	}
}
