package zyzzyva

import (
	"fmt"
	"sync"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/metrics"
	"neobft/internal/replication"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// Client implements Zyzzyva's two-path client protocol: complete on 3f+1
// matching speculative responses; after SpecTimeout, assemble a commit
// certificate from 2f+1 matching responses, distribute it, and complete
// on 2f+1 local-commits.
//
// The client is windowed: up to Tuning.Window operations may be in
// flight at once, each running the two-path state machine independently.
// Completions are released to callers in submission order so pipelined
// workloads still observe in-order semantics.
type Client struct {
	conn    transport.Conn
	members []transport.NodeID
	n, f    int
	cauth   *auth.ClientSide
	timeout time.Duration
	maxTO   time.Duration
	// SpecTimeout is how long the fast path waits for all 3f+1
	// responses before falling back (the dominant cost of Zyzzyva-F).
	specTimeout time.Duration

	slots chan struct{}

	mu      sync.Mutex
	reqID   uint64
	pending map[uint64]*pendingOp
	queue   []*pendingOp

	fastPath uint64
	slowPath uint64

	mRetrans  *metrics.Counter
	mTimeouts *metrics.Counter
	gInflight *metrics.Gauge
}

type specKey struct {
	view    uint64
	seq     uint64
	history [32]byte
	result  string
}

type pendingOp struct {
	c        *Client
	req      *replication.Request
	byKey    map[specKey]map[uint32][]byte // key → replica → group tag
	digests  map[specKey][32]byte
	commits  map[uint32]bool // local-commits
	ccSeq    uint64
	ccSent   bool
	done     chan []byte
	resultOf map[specKey][]byte

	ready    chan struct{}
	finished bool
	result   []byte
	err      error
}

// NewClient creates a Zyzzyva client. specTimeout bounds the fast path;
// tune carries the windowing/backoff/metrics knobs shared with the
// replication client.
func NewClient(conn transport.Conn, master []byte, n, f int, members []transport.NodeID, specTimeout time.Duration, tune replication.Tuning) *Client {
	timeout := tune.Timeout
	if timeout == 0 {
		timeout = 100 * time.Millisecond
	}
	maxTO := tune.MaxTimeout
	if maxTO == 0 {
		maxTO = 8 * timeout
	}
	if maxTO < timeout {
		maxTO = timeout
	}
	window := tune.Window
	if window <= 0 {
		window = 1
	}
	c := &Client{
		conn: conn, members: members, n: n, f: f,
		cauth:       auth.NewClientSide(master, int64(conn.ID()), n),
		timeout:     timeout,
		maxTO:       maxTO,
		specTimeout: specTimeout,
		slots:       make(chan struct{}, window),
		pending:     map[uint64]*pendingOp{},
		mRetrans:    tune.Metrics.Counter("client_retransmits_total"),
		mTimeouts:   tune.Metrics.Counter("client_timeouts_total"),
		gInflight:   tune.Metrics.Gauge("client_inflight"),
	}
	replication.InstallHandler(conn, c.handle)
	return c
}

// ID returns the client's node ID.
func (c *Client) ID() transport.NodeID { return c.conn.ID() }

// FastSlowCounts reports how many operations completed on each path.
func (c *Client) FastSlowCounts() (fast, slow uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fastPath, c.slowPath
}

// Invoke executes one operation and blocks until it completes.
func (c *Client) Invoke(op []byte, deadline time.Duration) ([]byte, error) {
	return c.Start(op, deadline).Wait()
}

// Start submits one operation into the pipeline. It blocks while the
// in-flight window is full, then returns a handle whose Wait releases
// results in submission order.
func (c *Client) Start(op []byte, deadline time.Duration) replication.Call {
	c.slots <- struct{}{}
	c.mu.Lock()
	c.reqID++
	req := &replication.Request{Client: c.conn.ID(), ReqID: c.reqID, Op: op}
	req.Auth = c.cauth.TagVector(req.SignedBody())
	p := &pendingOp{
		c:        c,
		req:      req,
		byKey:    map[specKey]map[uint32][]byte{},
		digests:  map[specKey][32]byte{},
		commits:  map[uint32]bool{},
		resultOf: map[specKey][]byte{},
		done:     make(chan []byte, 1),
		ready:    make(chan struct{}),
	}
	c.pending[req.ReqID] = p
	c.queue = append(c.queue, p)
	c.gInflight.Set(int64(len(c.pending)))
	c.mu.Unlock()

	c.conn.Send(c.members[0], req.Marshal()) // primary of view 0
	go p.run(deadline)
	return p
}

// Wait blocks until the operation completes and all earlier operations
// from this client have completed.
func (p *pendingOp) Wait() ([]byte, error) {
	<-p.ready
	return p.result, p.err
}

func (p *pendingOp) run(deadline time.Duration) {
	c := p.c
	pkt := p.req.Marshal()
	interval := c.timeout
	spec := time.NewTimer(c.specTimeout)
	defer spec.Stop()
	retrans := time.NewTimer(interval)
	defer retrans.Stop()
	overall := time.NewTimer(deadline)
	defer overall.Stop()
	for {
		select {
		case result := <-p.done:
			p.finish(result, nil)
			return
		case <-spec.C:
			// Fast path expired: try the commit-certificate slow path.
			c.mu.Lock()
			c.trySlowPathLocked(p)
			c.mu.Unlock()
		case <-retrans.C:
			for _, m := range c.members {
				c.conn.Send(m, pkt)
			}
			c.mRetrans.Inc()
			interval *= 2
			if interval > c.maxTO {
				interval = c.maxTO
			}
			retrans.Reset(interval)
		case <-overall.C:
			c.mTimeouts.Inc()
			p.finish(nil, fmt.Errorf("zyzzyva client %d: request %d timed out", c.conn.ID(), p.req.ReqID))
			return
		}
	}
}

// finish records the outcome, releases any consecutive finished
// operations at the head of the submission queue, and frees the
// window slot.
func (p *pendingOp) finish(result []byte, err error) {
	c := p.c
	c.mu.Lock()
	p.result, p.err = result, err
	p.finished = true
	delete(c.pending, p.req.ReqID)
	c.gInflight.Set(int64(len(c.pending)))
	for len(c.queue) > 0 && c.queue[0].finished {
		close(c.queue[0].ready)
		c.queue = c.queue[1:]
	}
	c.mu.Unlock()
	<-c.slots
}

func (c *Client) handle(from transport.NodeID, pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case kindSpecResponse:
		c.onSpecResponse(pkt[1:])
	case replication.KindReply:
		// Cached reply for a duplicate: treat as a speculative response
		// without a certificate contribution.
		if rep, err := replication.UnmarshalReply(pkt[1:]); err == nil {
			c.onReply(rep, [32]byte{}, nil)
		}
	case kindLocalCommit:
		c.onLocalCommit(pkt[1:])
	}
}

func (c *Client) onSpecResponse(body []byte) {
	rd := wire.NewReader(body)
	repBytes := rd.VarBytes()
	digest := rd.Bytes32()
	groupTag := append([]byte(nil), rd.VarBytes()...)
	if rd.Done() != nil {
		return
	}
	rep, err := replication.UnmarshalReply(repBytes)
	if err != nil {
		return
	}
	c.onReply(rep, digest, groupTag)
}

func (c *Client) onReply(rep *replication.Reply, digest [32]byte, groupTag []byte) {
	if int(rep.Replica) >= c.n {
		return
	}
	if !c.cauth.VerifyFrom(int(rep.Replica), rep.SignedBody(), rep.Auth) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pending[rep.ReqID]
	if p == nil {
		return
	}
	key := specKey{view: rep.View, seq: rep.Slot, history: rep.LogHash, result: string(rep.Result)}
	m := p.byKey[key]
	if m == nil {
		m = map[uint32][]byte{}
		p.byKey[key] = m
	}
	m[rep.Replica] = groupTag
	p.digests[key] = digest
	p.resultOf[key] = rep.Result
	if len(m) >= 3*c.f+1 {
		c.fastPath++
		select {
		case p.done <- rep.Result:
		default:
		}
	}
}

// trySlowPathLocked sends the commit certificate if some response key has
// at least 2f+1 matches. Caller holds c.mu.
func (c *Client) trySlowPathLocked(p *pendingOp) {
	if p.ccSent {
		return
	}
	for key, m := range p.byKey {
		withTag := 0
		for _, tag := range m {
			if tag != nil {
				withTag++
			}
		}
		if withTag < 2*c.f+1 {
			continue
		}
		p.ccSent = true
		p.ccSeq = key.seq
		w := wire.NewWriter(512)
		w.U8(kindCommit)
		w.U64(key.view)
		w.U64(key.seq)
		w.Bytes32(key.history)
		w.Bytes32(p.digests[key])
		cnt := 0
		var parts []struct {
			rep uint32
			tag []byte
		}
		for rep, tag := range m {
			if tag == nil || cnt >= 2*c.f+1 {
				continue
			}
			parts = append(parts, struct {
				rep uint32
				tag []byte
			}{rep, tag})
			cnt++
		}
		w.U32(uint32(len(parts)))
		for _, pp := range parts {
			w.U32(pp.rep)
			w.VarBytes(pp.tag)
		}
		p.resultOf[specKey{}] = p.resultOf[key] // remember the committed result
		for _, mm := range c.members {
			c.conn.Send(mm, w.Bytes())
		}
		return
	}
}

func (c *Client) onLocalCommit(body []byte) {
	// Reconstruct the signed body: kind byte + fields.
	rd := wire.NewReader(body)
	view := rd.U64()
	seq := rd.U64()
	replica := rd.U32()
	mac := rd.VarBytes()
	if rd.Done() != nil || int(replica) >= c.n {
		return
	}
	signed := wire.NewWriter(64)
	signed.U8(kindLocalCommit)
	signed.U64(view)
	signed.U64(seq)
	signed.U32(replica)
	if !c.cauth.VerifyFrom(int(replica), signed.Bytes(), mac) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// A local-commit doesn't carry the reqID; match it to the pending
	// operation whose certificate covers this sequence number.
	for _, p := range c.pending {
		if !p.ccSent || seq != p.ccSeq {
			continue
		}
		p.commits[replica] = true
		if len(p.commits) >= 2*c.f+1 {
			c.slowPath++
			select {
			case p.done <- p.resultOf[specKey{}]:
			default:
			}
		}
		return
	}
}
