package unreplicated

import (
	"bytes"
	"testing"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/simnet"
)

func rig(t *testing.T) (*Server, *replication.Client) {
	t.Helper()
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	srv := NewServer(net.Join(1), replication.EchoApp{}, auth.NewReplicaSide([]byte("m"), 0))
	cl := NewClient(net.Join(100), 1, []byte("m"), replication.Tuning{Timeout: 50 * time.Millisecond})
	return srv, cl
}

func TestEchoRoundTrip(t *testing.T) {
	srv, cl := rig(t)
	for i := 0; i < 5; i++ {
		res, err := cl.Invoke([]byte{byte(i)}, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res, []byte{byte(i)}) {
			t.Fatalf("echo %d = %v", i, res)
		}
	}
	if srv.Ops() != 5 {
		t.Fatalf("ops = %d", srv.Ops())
	}
}

func TestDuplicateSuppressed(t *testing.T) {
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	srv := NewServer(net.Join(1), replication.EchoApp{}, auth.NewReplicaSide([]byte("m"), 0))
	conn := net.Join(100)
	cl := NewClient(conn, 1, []byte("m"), replication.Tuning{Timeout: 50 * time.Millisecond})
	if _, err := cl.Invoke([]byte("once"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Replay the identical request; the server must not re-execute.
	req := &replication.Request{Client: 100, ReqID: 1, Op: []byte("once")}
	req.Auth = auth.NewClientSide([]byte("m"), 100, 1).TagVector(req.SignedBody())
	for i := 0; i < 3; i++ {
		conn.Send(1, req.Marshal())
	}
	time.Sleep(20 * time.Millisecond)
	if srv.Ops() != 1 {
		t.Fatalf("duplicates executed: ops = %d", srv.Ops())
	}
}

func TestForgedRequestRejected(t *testing.T) {
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	srv := NewServer(net.Join(1), replication.EchoApp{}, auth.NewReplicaSide([]byte("m"), 0))
	evil := net.Join(200)
	req := &replication.Request{Client: 200, ReqID: 1, Op: []byte("x"), Auth: make([]byte, 8)}
	evil.Send(1, req.Marshal())
	time.Sleep(10 * time.Millisecond)
	if srv.Ops() != 0 {
		t.Fatal("forged request executed")
	}
}
