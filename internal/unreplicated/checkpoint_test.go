package unreplicated

import (
	"testing"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/simnet"
)

// TestCheckpointBoundsLogWindow: with a single server every checkpoint
// is trivially stable, so the log truncates on each interval boundary
// and never holds more than one interval of digests.
func TestCheckpointBoundsLogWindow(t *testing.T) {
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	const interval = 4
	srv := New(Config{
		Conn:               net.Join(1),
		App:                replication.EchoApp{},
		ClientAuth:         auth.NewReplicaSide([]byte("m"), 0),
		CheckpointInterval: interval,
	})
	t.Cleanup(srv.Close)
	cl := NewClient(net.Join(100), 1, []byte("m"), replication.Tuning{Timeout: 50 * time.Millisecond})

	const ops = 10
	for i := 0; i < ops; i++ {
		if _, err := cl.Invoke([]byte{byte(i)}, 5*time.Second); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	low, high := srv.LowWatermark(), srv.HighWatermark()
	if low != 8 {
		t.Errorf("low watermark = %d after %d ops at interval %d, want 8", low, ops, interval)
	}
	if high-low > interval {
		t.Errorf("window [%d,%d] wider than one interval", low, high)
	}
}
