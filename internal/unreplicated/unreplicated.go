// Package unreplicated implements the non-fault-tolerant baseline used in
// Figs 7 and 10 of the paper: a single server executing client operations
// directly. It provides the upper bound against which all replication
// protocols are compared.
package unreplicated

import (
	"sync"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/transport"
)

// Server is the unreplicated service endpoint.
type Server struct {
	conn       transport.Conn
	app        replication.App
	clientAuth *auth.ReplicaSide

	mu    sync.Mutex
	table *replication.ClientTable
	ops   uint64
}

// NewServer attaches an unreplicated server to conn.
func NewServer(conn transport.Conn, app replication.App, clientAuth *auth.ReplicaSide) *Server {
	s := &Server{conn: conn, app: app, clientAuth: clientAuth, table: replication.NewClientTable()}
	conn.SetHandler(s.handle)
	return s
}

// Ops returns the number of executed operations.
func (s *Server) Ops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

func (s *Server) handle(from transport.NodeID, pkt []byte) {
	if len(pkt) == 0 || pkt[0] != replication.KindRequest {
		return
	}
	req, err := replication.UnmarshalRequest(pkt[1:])
	if err != nil {
		return
	}
	if !s.clientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh, cached := s.table.Check(req.Client, req.ReqID)
	if !fresh {
		if cached != nil {
			s.conn.Send(req.Client, cached.Marshal())
		}
		return
	}
	result, _ := s.app.Execute(req.Op)
	s.ops++
	rep := &replication.Reply{Replica: 0, ReqID: req.ReqID, Result: result}
	rep.Auth = s.clientAuth.TagFor(int64(req.Client), rep.SignedBody())
	s.table.Store(req.Client, req.ReqID, rep)
	s.conn.Send(req.Client, rep.Marshal())
}

// NewClient builds a closed-loop client for the unreplicated server.
func NewClient(conn transport.Conn, server transport.NodeID, master []byte, timeout time.Duration) *replication.Client {
	cl := replication.NewClient(replication.ClientConfig{
		Conn: conn, N: 1, F: 0, Quorum: 1,
		Auth:    auth.NewClientSide(master, int64(conn.ID()), 1),
		Timeout: timeout,
		Submit: func(req *replication.Request, retry bool) {
			conn.Send(server, req.Marshal())
		},
	})
	conn.SetHandler(func(from transport.NodeID, pkt []byte) { cl.HandlePacket(from, pkt) })
	return cl
}
