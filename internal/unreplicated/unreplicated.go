// Package unreplicated implements the non-fault-tolerant baseline used in
// Figs 7 and 10 of the paper: a single server executing client operations
// directly. It provides the upper bound against which all replication
// protocols are compared.
package unreplicated

import (
	"sync"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/metrics"
	"neobft/internal/replication"
	"neobft/internal/runtime"
	"neobft/internal/transport"
)

// Config configures an unreplicated server.
type Config struct {
	Conn       transport.Conn
	App        replication.App
	ClientAuth *auth.ReplicaSide
	// Runtime hosts the server's event loop and verification workers.
	// If nil, New creates a default runtime over Conn.
	Runtime *runtime.Runtime
	// Metrics is the server's shared registry (runtime stages plus
	// proto_* series). If nil, the runtime's registry is used.
	Metrics *metrics.Registry
}

// Server is the unreplicated service endpoint.
type Server struct {
	cfg Config
	rt  *runtime.Runtime

	mu    sync.Mutex
	table *replication.ClientTable
	ops   uint64

	// metrics (nil-safe no-ops when unconfigured)
	reg       *metrics.Registry
	mCommits  *metrics.Counter
	mAuthFail *metrics.Counter
	mMsgReq   *metrics.Counter
}

// New creates and starts an unreplicated server.
func New(cfg Config) *Server {
	if cfg.Runtime == nil {
		cfg.Runtime = runtime.New(runtime.Config{Conn: cfg.Conn, Metrics: cfg.Metrics})
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Runtime.Metrics()
	}
	s := &Server{cfg: cfg, rt: cfg.Runtime, table: replication.NewClientTable()}
	reg := cfg.Metrics
	s.reg = reg
	s.mCommits = reg.Counter("proto_commits_total")
	s.mAuthFail = reg.Counter("proto_auth_fail_total")
	s.mMsgReq = reg.Counter("proto_msg_client_request_total")
	s.rt.Start(s)
	return s
}

// Metrics returns the server's shared metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// NewServer attaches an unreplicated server to conn with a default
// runtime (compatibility constructor).
func NewServer(conn transport.Conn, app replication.App, clientAuth *auth.ReplicaSide) *Server {
	return New(Config{Conn: conn, App: app, ClientAuth: clientAuth})
}

// Close stops the server's runtime.
func (s *Server) Close() { s.rt.Close() }

// Runtime returns the server's runtime (for stats and draining).
func (s *Server) Runtime() *runtime.Runtime { return s.rt }

// Ops returns the number of executed operations.
func (s *Server) Ops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

type evRequest struct{ req *replication.Request }

// VerifyPacket implements runtime.Handler: decode + client MAC off-loop.
func (s *Server) VerifyPacket(from transport.NodeID, pkt []byte) runtime.Event {
	if len(pkt) == 0 || pkt[0] != replication.KindRequest {
		return nil
	}
	req, err := replication.UnmarshalRequest(pkt[1:])
	if err != nil {
		return nil
	}
	if !s.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
		s.mAuthFail.Inc()
		return nil
	}
	s.mMsgReq.Inc()
	return evRequest{req: req}
}

// ApplyEvent implements runtime.Handler: execute on the loop.
func (s *Server) ApplyEvent(from transport.NodeID, ev runtime.Event) {
	req := ev.(evRequest).req
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh, cached := s.table.Check(req.Client, req.ReqID)
	if !fresh {
		if cached != nil {
			s.cfg.Conn.Send(req.Client, cached.Marshal())
		}
		return
	}
	result, _ := s.cfg.App.Execute(req.Op)
	s.ops++
	s.mCommits.Inc()
	rep := &replication.Reply{Replica: 0, ReqID: req.ReqID, Result: result}
	rep.Auth = s.cfg.ClientAuth.TagFor(int64(req.Client), rep.SignedBody())
	s.table.Store(req.Client, req.ReqID, rep)
	s.cfg.Conn.Send(req.Client, rep.Marshal())
}

// NewClient builds a closed-loop client for the unreplicated server.
func NewClient(conn transport.Conn, server transport.NodeID, master []byte, timeout time.Duration) *replication.Client {
	return replication.NewWiredClient(replication.ClientConfig{
		Conn: conn, N: 1, F: 0, Quorum: 1,
		Timeout: timeout,
		Submit: func(req *replication.Request, retry bool) {
			conn.Send(server, req.Marshal())
		},
	}, master)
}
