// Package unreplicated implements the non-fault-tolerant baseline used in
// Figs 7 and 10 of the paper: a single server executing client operations
// directly. It provides the upper bound against which all replication
// protocols are compared.
package unreplicated

import (
	"crypto/sha256"
	"sync"

	"neobft/internal/crypto/auth"
	"neobft/internal/metrics"
	"neobft/internal/replication"
	"neobft/internal/runtime"
	"neobft/internal/seqlog"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// ckptDomain separates the server's checkpoint digests from the
// replicated protocols sharing the seqlog helpers.
const ckptDomain = "unrep-ckpt"

// Config configures an unreplicated server.
type Config struct {
	Conn       transport.Conn
	App        replication.App
	ClientAuth *auth.ReplicaSide
	// CheckpointInterval is the number of operations between checkpoints
	// (default 128). With a single server every checkpoint is trivially
	// stable: the log truncates immediately, so the window never exceeds
	// one interval.
	CheckpointInterval int
	// Runtime hosts the server's event loop and verification workers.
	// If nil, New creates a default runtime over Conn.
	Runtime *runtime.Runtime
	// Metrics is the server's shared registry (runtime stages plus
	// proto_* series). If nil, the runtime's registry is used.
	Metrics *metrics.Registry
	// Restore, if non-nil, boots the server from a Persist() blob: the
	// executed-operation count plus state snapshot. With no peers there
	// is nothing to catch up from — operations past the blob are simply
	// lost, which is exactly the baseline's (lack of a) fault model.
	Restore []byte
}

// Server is the unreplicated service endpoint.
type Server struct {
	cfg Config
	rt  *runtime.Runtime

	mu    sync.Mutex
	table *replication.ClientTable
	ops   uint64
	// log records executed operation digests in the live window; the
	// single-vote checkpoint engine stabilizes and truncates it every
	// CheckpointInterval operations.
	log  seqlog.Log[[32]byte]
	ckpt *seqlog.Engine

	// metrics (nil-safe no-ops when unconfigured)
	reg        *metrics.Registry
	mCommits   *metrics.Counter
	mAuthFail  *metrics.Counter
	mMsgReq    *metrics.Counter
	mCkpt      *metrics.Counter
	mTruncated *metrics.Counter
	gLow       *metrics.Gauge
	gHigh      *metrics.Gauge
}

// New creates and starts an unreplicated server.
func New(cfg Config) *Server {
	if cfg.Runtime == nil {
		cfg.Runtime = runtime.New(runtime.Config{Conn: cfg.Conn, Metrics: cfg.Metrics})
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Runtime.Metrics()
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 128
	}
	s := &Server{cfg: cfg, rt: cfg.Runtime, table: replication.NewClientTable(),
		ckpt: seqlog.NewEngine(1)}
	reg := cfg.Metrics
	s.reg = reg
	s.mCommits = reg.Counter("proto_commits_total")
	s.mAuthFail = reg.Counter("proto_auth_fail_total")
	s.mMsgReq = reg.Counter("proto_msg_client_request_total")
	s.mCkpt = reg.Counter("proto_checkpoints_total")
	s.mTruncated = reg.Counter("proto_truncated_slots_total")
	s.gLow = reg.Gauge("proto_log_low_watermark")
	s.gHigh = reg.Gauge("proto_log_high_watermark")
	if cfg.Restore != nil {
		s.restoreFromPersist(cfg.Restore)
	}
	s.rt.Start(s)
	return s
}

// Persist captures the server's durable recovery state: the operation
// count and a state snapshot.
func (s *Server) Persist() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := replication.CaptureSnapshot(s.cfg.App, s.table)
	w := wire.NewWriter(32 + len(snap))
	w.U64(s.ops)
	w.VarBytes(snap)
	return w.Bytes()
}

// restoreFromPersist boots from a Persist blob. Called from New before
// the runtime starts.
func (s *Server) restoreFromPersist(blob []byte) {
	rd := wire.NewReader(blob)
	ops := rd.U64()
	snap := append([]byte(nil), rd.VarBytes()...)
	if rd.Done() != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if replication.InstallSnapshot(s.cfg.App, s.table, snap) != nil {
		return
	}
	s.table.Reauth(0, func(c transport.NodeID, b []byte) []byte {
		return s.cfg.ClientAuth.TagFor(int64(c), b)
	})
	s.ops = ops
	s.log.Reset(ops)
	s.gLow.Set(int64(s.log.Low()))
	s.gHigh.Set(int64(s.log.High()))
}

// Metrics returns the server's shared metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// NewServer attaches an unreplicated server to conn with a default
// runtime (compatibility constructor).
func NewServer(conn transport.Conn, app replication.App, clientAuth *auth.ReplicaSide) *Server {
	return New(Config{Conn: conn, App: app, ClientAuth: clientAuth})
}

// Close stops the server's runtime.
func (s *Server) Close() { s.rt.Close() }

// Runtime returns the server's runtime (for stats and draining).
func (s *Server) Runtime() *runtime.Runtime { return s.rt }

// Ops returns the number of executed operations.
func (s *Server) Ops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// LowWatermark returns the log's low watermark (last checkpoint).
func (s *Server) LowWatermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Low()
}

// HighWatermark returns the highest retained log slot.
func (s *Server) HighWatermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.High()
}

type evRequest struct{ req *replication.Request }

// VerifyPacket implements runtime.Handler: decode + client MAC off-loop.
func (s *Server) VerifyPacket(from transport.NodeID, pkt []byte) runtime.Event {
	if len(pkt) == 0 || pkt[0] != replication.KindRequest {
		return nil
	}
	req, err := replication.UnmarshalRequest(pkt[1:])
	if err != nil {
		return nil
	}
	if !s.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
		s.mAuthFail.Inc()
		return nil
	}
	s.mMsgReq.Inc()
	return evRequest{req: req}
}

// ApplyEvent implements runtime.Handler: execute on the loop.
func (s *Server) ApplyEvent(from transport.NodeID, ev runtime.Event) {
	req := ev.(evRequest).req
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh, cached := s.table.Check(req.Client, req.ReqID)
	if !fresh {
		if cached != nil {
			s.cfg.Conn.Send(req.Client, cached.Marshal())
		}
		return
	}
	result, _ := s.cfg.App.Execute(req.Op)
	s.ops++
	s.mCommits.Inc()
	slot := s.log.Append(replication.RequestDigest(req))
	s.gHigh.Set(int64(s.log.High()))
	if slot%uint64(s.cfg.CheckpointInterval) == 0 {
		s.checkpointLocked(slot)
	}
	rep := &replication.Reply{Replica: 0, ReqID: req.ReqID, Result: result}
	rep.Auth = s.cfg.ClientAuth.TagFor(int64(req.Client), rep.SignedBody())
	s.table.Store(req.Client, req.ReqID, rep)
	s.cfg.Conn.Send(req.Client, rep.Marshal())
}

// checkpointLocked stabilizes the log at slot: with no peers, the
// server's own vote is the full quorum, so the certificate forms
// immediately and the window truncates on the spot. Caller holds s.mu.
func (s *Server) checkpointLocked(slot uint64) {
	snap := replication.CaptureSnapshot(s.cfg.App, s.table)
	stateD := sha256.Sum256(snap)
	digest := seqlog.Digest(ckptDomain, slot, stateD)
	s.mCkpt.Inc()
	if cert := s.ckpt.Add(slot, 0, digest, nil); cert != nil {
		dropped := s.log.TruncateTo(cert.Slot)
		s.mTruncated.Add(uint64(dropped))
		s.gLow.Set(int64(s.log.Low()))
		s.gHigh.Set(int64(s.log.High()))
	}
}

// NewClient builds a client for the unreplicated server.
func NewClient(conn transport.Conn, server transport.NodeID, master []byte, tune replication.Tuning) *replication.Client {
	cfg := replication.ClientConfig{
		Conn: conn, N: 1, F: 0, Quorum: 1,
		Submit: func(req *replication.Request, retry bool) {
			conn.Send(server, req.Marshal())
		},
	}
	tune.Apply(&cfg)
	return replication.NewWiredClient(cfg, master)
}
