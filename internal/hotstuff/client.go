package hotstuff

import (
	"neobft/internal/replication"
	"neobft/internal/transport"
)

// NewClient builds a HotStuff client: requests broadcast to every
// replica's mempool; a result is accepted after f+1 matching replies.
func NewClient(conn transport.Conn, master []byte, n, f int, members []transport.NodeID, tune replication.Tuning) *replication.Client {
	cfg := replication.ClientConfig{
		Conn: conn, N: n, F: f, Quorum: f + 1,
		Submit: func(req *replication.Request, retry bool) {
			pkt := req.Marshal()
			for _, m := range members {
				conn.Send(m, pkt)
			}
		},
	}
	tune.Apply(&cfg)
	return replication.NewWiredClient(cfg, master)
}
