package hotstuff

import (
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/transport"
)

// NewClient builds a HotStuff client: requests broadcast to every
// replica's mempool; a result is accepted after f+1 matching replies.
func NewClient(conn transport.Conn, master []byte, n, f int, members []transport.NodeID, timeout time.Duration) *replication.Client {
	cl := replication.NewClient(replication.ClientConfig{
		Conn: conn, N: n, F: f, Quorum: f + 1,
		Auth:    auth.NewClientSide(master, int64(conn.ID()), n),
		Timeout: timeout,
		Submit: func(req *replication.Request, retry bool) {
			pkt := req.Marshal()
			for _, m := range members {
				conn.Send(m, pkt)
			}
		},
	})
	conn.SetHandler(func(from transport.NodeID, pkt []byte) { cl.HandlePacket(from, pkt) })
	return cl
}
