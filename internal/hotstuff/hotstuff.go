// Package hotstuff implements chained HotStuff (Yin et al., PODC '19),
// the linear-communication BFT baseline of the paper's evaluation. A
// rotating leader proposes blocks that carry a quorum certificate (QC)
// over the previous block; replicas vote to the next leader; a block
// commits once it heads a three-chain of consecutive QCs. The extra
// phase buys O(N) view changes at the price of one more round — which is
// why HotStuff has the highest commit latency in Fig 7.
//
// The timeout pacemaker is omitted: the evaluation exercises the
// fault-free pipeline (leaders rotate via QC formation).
package hotstuff

import (
	"crypto/sha256"
	"sync"
	"time"

	"neobft/internal/batch"
	"neobft/internal/crypto/auth"
	"neobft/internal/metrics"
	"neobft/internal/replication"
	"neobft/internal/runtime"
	"neobft/internal/seqlog"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// Flight-recorder event kind for three-chain block commits.
var tkHSCommit = metrics.RegisterTraceKind("hotstuff_block_commit") // a=height, b=view

// Message kinds.
const (
	kindPropose uint8 = replication.KindProtocolBase + iota
	kindVote
)

// Config configures a HotStuff replica.
type Config struct {
	Self, N, F int
	Members    []transport.NodeID
	Conn       transport.Conn
	Auth       auth.Authenticator
	ClientAuth *auth.ReplicaSide
	App        replication.App
	// BatchSize caps requests per block (default 8).
	BatchSize int
	// BatchBytes caps the marshaled request payload per block (default
	// batch.DefaultMaxBytes).
	BatchBytes int
	// BatchLinger lets a leader defer a below-target batch for up to
	// this long. Zero preserves the cut-immediately behavior.
	BatchLinger time.Duration
	// BatchAdaptive scales the batch-size target with queue depth (see
	// batch.Config.Adaptive). Requires BatchLinger > 0.
	BatchAdaptive bool
	// CheckpointInterval is the number of committed heights between
	// compactions (default 128). Three-chain commits are final, so
	// compaction is purely local: no checkpoint vote exchange is needed,
	// the block tree and vote maps are simply pruned below the boundary.
	CheckpointInterval int
	// Runtime hosts the replica's event loop and verification workers.
	// If nil, New creates a default runtime over Conn.
	Runtime *runtime.Runtime
	// Metrics is the replica's shared registry (runtime stages plus
	// proto_* series). If nil, the runtime's registry is used.
	Metrics *metrics.Registry
	// Restore, if non-nil, boots the replica from a Persist() blob.
	// Three-chain commits are locally final, so the blob is just the
	// executed height plus state snapshot — no certificate is involved.
	// HotStuff has no peer state-transfer path: a restored replica
	// resumes with its committed state but cannot vote on blocks whose
	// ancestry predates the restart, so it follows passively until the
	// chain catches it up (or forever, if proposals reference pruned
	// parents — the known liveness gap of restart without block sync).
	Restore []byte
}

type qc struct {
	view  uint64
	block [32]byte
	parts []part
}

type part struct {
	Replica uint32
	Tag     []byte
}

type block struct {
	hash    [32]byte
	view    uint64
	height  uint64
	parent  [32]byte
	digest  [32]byte
	batch   []*replication.Request
	justify *qc
}

// Replica is a HotStuff replica.
type Replica struct {
	cfg  Config
	conn transport.Conn
	rt   *runtime.Runtime

	mu        sync.Mutex
	blocks    map[[32]byte]*block
	highQC    *qc
	lockedQC  *qc
	votes     map[[32]byte]map[uint32][]byte // block hash → replica → tag
	voted     map[uint64]bool                // views this replica voted in
	proposed  map[uint64]bool                // views this replica proposed in
	lastExec  uint64                         // height executed through
	committed map[[32]byte]bool
	// batcher queues client requests (with their trace refs, closed into
	// ordering spans at proposal time) and cuts block batches per the
	// shared hybrid policy, including through the committed-elsewhere
	// compaction filter.
	batcher *batch.Batcher
	inQueue map[string]bool
	table   *replication.ClientTable
	// log holds committed blocks in the live watermark window; interval
	// compaction truncates it and prunes the tree maps below it.
	log seqlog.Log[*block]

	executedOps uint64

	// metrics (nil-safe no-ops when unconfigured)
	reg         *metrics.Registry
	mCommits    *metrics.Counter
	mBlocks     *metrics.Counter
	mAuthFail   *metrics.Counter
	mCkpt       *metrics.Counter
	mTruncated  *metrics.Counter
	mVoteRej    *metrics.Counter
	gLow        *metrics.Gauge
	gHigh       *metrics.Gauge
	msgCounters map[uint8]*metrics.Counter
	trace       *metrics.Recorder
}

var genesisHash [32]byte

// New creates and starts a HotStuff replica.
func New(cfg Config) *Replica {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 128
	}
	r := &Replica{
		cfg:       cfg,
		conn:      cfg.Conn,
		blocks:    map[[32]byte]*block{},
		votes:     map[[32]byte]map[uint32][]byte{},
		voted:     map[uint64]bool{},
		proposed:  map[uint64]bool{},
		committed: map[[32]byte]bool{},
		inQueue:   map[string]bool{},
		table:     replication.NewClientTable(),
	}
	// Genesis block at height 0 with a genesis QC at view 0.
	g := &block{hash: genesisHash, view: 0, height: 0}
	r.blocks[genesisHash] = g
	r.highQC = &qc{view: 0, block: genesisHash}
	r.lockedQC = r.highQC
	if cfg.Runtime == nil {
		cfg.Runtime = runtime.New(runtime.Config{Conn: cfg.Conn, Metrics: cfg.Metrics})
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Runtime.Metrics()
	}
	r.cfg.Metrics = cfg.Metrics
	r.cfg.Runtime = cfg.Runtime
	reg := cfg.Metrics
	r.reg = reg
	r.mCommits = reg.Counter("proto_commits_total")
	r.mBlocks = reg.Counter("proto_block_commits_total")
	r.mAuthFail = reg.Counter("proto_auth_fail_total")
	r.mCkpt = reg.Counter("proto_checkpoints_total")
	r.mTruncated = reg.Counter("proto_truncated_slots_total")
	r.mVoteRej = reg.Counter("proto_sync_horizon_rejects_total")
	r.gLow = reg.Gauge("proto_log_low_watermark")
	r.gHigh = reg.Gauge("proto_log_high_watermark")
	r.msgCounters = map[uint8]*metrics.Counter{
		replication.KindRequest: reg.Counter("proto_msg_client_request_total"),
		kindPropose:             reg.Counter("proto_msg_propose_total"),
		kindVote:                reg.Counter("proto_msg_vote_total"),
	}
	r.trace = reg.Recorder()
	r.rt = cfg.Runtime
	r.batcher = batch.New(batch.Config{
		MaxCount:  cfg.BatchSize,
		MaxBytes:  cfg.BatchBytes,
		MaxLinger: cfg.BatchLinger,
		Adaptive:  cfg.BatchAdaptive,
		Metrics:   reg,
	})
	if cfg.Restore != nil {
		r.restoreFromPersist(cfg.Restore)
	}
	if cfg.BatchLinger > 0 {
		r.rt.ArmEvery(flushPollInterval(cfg.BatchLinger), r.onBatchPoll)
	}
	r.rt.Start(r)
	return r
}

// Persist captures the replica's durable recovery state: the executed
// height and a state snapshot. Commits are locally final in HotStuff, so
// unlike the quorum-checkpoint protocols no certificate is needed.
func (r *Replica) Persist() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := replication.CaptureSnapshot(r.cfg.App, r.table)
	w := wire.NewWriter(64 + len(snap))
	w.U64(r.lastExec)
	w.U64(r.executedOps)
	w.VarBytes(snap)
	return w.Bytes()
}

// restoreFromPersist boots from a Persist blob. Called from New before
// the runtime starts.
func (r *Replica) restoreFromPersist(blob []byte) {
	rd := wire.NewReader(blob)
	height := rd.U64()
	ops := rd.U64()
	snap := append([]byte(nil), rd.VarBytes()...)
	if rd.Done() != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if replication.InstallSnapshot(r.cfg.App, r.table, snap) != nil {
		return
	}
	r.table.Reauth(uint32(r.cfg.Self), func(c transport.NodeID, b []byte) []byte {
		return r.cfg.ClientAuth.TagFor(int64(c), b)
	})
	r.lastExec = height
	r.executedOps = ops
	r.log.Reset(height)
	r.gLow.Set(int64(r.log.Low()))
	r.gHigh.Set(int64(r.log.High()))
}

// Metrics returns the replica's shared metrics registry.
func (r *Replica) Metrics() *metrics.Registry { return r.reg }

// Close stops the replica's runtime.
func (r *Replica) Close() { r.rt.Close() }

// Runtime returns the replica's runtime (for stats and draining).
func (r *Replica) Runtime() *runtime.Runtime { return r.rt }

// Executed returns the number of executed client operations.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executedOps
}

// LowWatermark returns the committed log's low watermark (last
// compaction boundary).
func (r *Replica) LowWatermark() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Low()
}

// HighWatermark returns the highest committed height retained in the
// log.
func (r *Replica) HighWatermark() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.High()
}

// BlockTreeSize returns the number of blocks currently retained (for
// memory-bound assertions in tests).
func (r *Replica) BlockTreeSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.blocks)
}

func (r *Replica) leaderOf(view uint64) int { return int(view) % r.cfg.N }

func (r *Replica) broadcast(pkt []byte) {
	for i, m := range r.cfg.Members {
		if i == r.cfg.Self {
			continue
		}
		r.conn.Send(m, pkt)
	}
}

func blockHash(view, height uint64, parent, digest, qcBlock [32]byte) [32]byte {
	w := wire.NewWriter(128)
	w.Raw([]byte("hs-block"))
	w.U64(view)
	w.U64(height)
	w.Bytes32(parent)
	w.Bytes32(digest)
	w.Bytes32(qcBlock)
	return sha256.Sum256(w.Bytes())
}

func voteBody(view uint64, hash [32]byte, replica uint32) []byte {
	w := wire.NewWriter(64)
	w.Raw([]byte("hs-vote"))
	w.U64(view)
	w.Bytes32(hash)
	w.U32(replica)
	return w.Bytes()
}

func proposeBody(view uint64, hash [32]byte) []byte {
	w := wire.NewWriter(64)
	w.Raw([]byte("hs-prop"))
	w.U64(view)
	w.Bytes32(hash)
	return w.Bytes()
}

func batchDigest(batch []*replication.Request) [32]byte {
	var acc [32]byte
	for _, req := range batch {
		acc = replication.ChainHash(acc, replication.RequestDigest(req))
	}
	return acc
}

func reqKey(c transport.NodeID, id uint64) string {
	w := wire.NewWriter(12)
	w.U32(uint32(c))
	w.U64(id)
	return string(w.Bytes())
}

// --- verify stage (worker goroutines) --------------------------------------

type evRequest struct{ req *replication.Request }

// evPropose carries a fully decoded block whose leader authenticator,
// batch digest, block hash and justify QC were all verified off-loop.
type evPropose struct{ b *block }

type evVote struct {
	replica uint32
	view    uint64
	hash    [32]byte
	tag     []byte
}

// VerifyPacket implements runtime.Handler.
func (r *Replica) VerifyPacket(from transport.NodeID, pkt []byte) runtime.Event {
	if len(pkt) == 0 {
		return nil
	}
	r.msgCounters[pkt[0]].Inc()
	switch pkt[0] {
	case replication.KindRequest:
		req, err := replication.UnmarshalRequest(pkt[1:])
		if err != nil {
			return nil
		}
		if !r.cfg.ClientAuth.VerifyClient(int64(req.Client), req.SignedBody(), req.Auth) {
			r.mAuthFail.Inc()
			return nil
		}
		return evRequest{req: req}
	case kindPropose:
		b := r.verifyPropose(pkt[1:])
		if b == nil {
			return nil
		}
		return evPropose{b: b}
	case kindVote:
		rd := wire.NewReader(pkt[1:])
		replica := rd.U32()
		view := rd.U64()
		hash := rd.Bytes32()
		tag := append([]byte(nil), rd.VarBytes()...)
		if rd.Done() != nil || int(replica) >= r.cfg.N {
			return nil
		}
		if !r.cfg.Auth.VerifyVector(int(replica), voteBody(view, hash, replica), tag) {
			r.mAuthFail.Inc()
			return nil
		}
		return evVote{replica: replica, view: view, hash: hash, tag: tag}
	}
	return nil
}

// verifyPropose decodes and fully authenticates a proposal: every check
// here depends only on the packet and the key material, never on the
// block tree, which apply consults afterwards.
func (r *Replica) verifyPropose(pkt []byte) *block {
	rd := wire.NewReader(pkt)
	body := rd.VarBytes()
	tag := append([]byte(nil), rd.VarBytes()...)
	view := rd.U64()
	height := rd.U64()
	parent := rd.Bytes32()
	digest := rd.Bytes32()
	reqs, ok := batch.Unmarshal(rd)
	if !ok {
		return nil
	}
	qcView := rd.U64()
	qcBlock := rd.Bytes32()
	np := rd.U32()
	if rd.Err() != nil || np > uint32(r.cfg.N) {
		return nil
	}
	parts := make([]part, np)
	for i := range parts {
		parts[i].Replica = rd.U32()
		parts[i].Tag = append([]byte(nil), rd.VarBytes()...)
	}
	if rd.Done() != nil {
		return nil
	}
	br := wire.NewReader(body)
	if !br.Prefix("hs-prop") {
		return nil
	}
	bView := br.U64()
	bHash := br.Bytes32()
	if br.Done() != nil || bView != view {
		return nil
	}
	if batchDigest(reqs) != digest {
		return nil
	}
	if blockHash(view, height, parent, digest, qcBlock) != bHash {
		return nil
	}
	if !r.cfg.Auth.VerifyVector(r.leaderOf(view), body, tag) {
		return nil
	}
	j := &qc{view: qcView, block: qcBlock, parts: parts}
	if !r.validQC(j) {
		return nil
	}
	return &block{hash: bHash, view: view, height: height, parent: parent,
		digest: digest, batch: reqs, justify: j}
}

// ApplyEvent implements runtime.Handler.
func (r *Replica) ApplyEvent(from transport.NodeID, ev runtime.Event) {
	switch e := ev.(type) {
	case evRequest:
		r.onRequest(e.req)
	case evPropose:
		r.onPropose(e.b)
	case evVote:
		r.onVote(e)
	}
}

// --- apply stage (loop goroutine) ------------------------------------------

func (r *Replica) onRequest(req *replication.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh, cached := r.table.Check(req.Client, req.ReqID)
	if !fresh {
		if cached != nil {
			r.conn.Send(req.Client, cached.Marshal())
		}
		return
	}
	key := reqKey(req.Client, req.ReqID)
	if !r.inQueue[key] {
		r.inQueue[key] = true
		r.batcher.Put(req, r.rt.Tracer().ActiveRef())
	}
	r.tryProposeLocked()
}

// flushPollInterval picks how often to poll a lingering batcher: half
// the linger bound, floored at 500µs so tiny lingers do not spin the
// loop.
func flushPollInterval(linger time.Duration) time.Duration {
	d := linger / 2
	if d < 500*time.Microsecond {
		d = 500 * time.Microsecond
	}
	return d
}

// onBatchPoll runs on the runtime loop when a linger bound is set: it
// proposes batches whose oldest request has waited out the linger even
// if no new request arrives to trigger tryProposeLocked.
func (r *Replica) onBatchPoll() {
	r.mu.Lock()
	r.tryProposeLocked()
	r.mu.Unlock()
}

// tryProposeLocked proposes a block if this replica leads the view after
// the highest QC and has something to propose (requests, or uncommitted
// blocks that need the pipeline flushed). Caller holds r.mu.
func (r *Replica) tryProposeLocked() {
	view := r.highQC.view + 1
	if r.leaderOf(view) != r.cfg.Self || r.proposed[view] {
		return
	}
	// Filter requests that other leaders already committed.
	r.batcher.Filter(func(req *replication.Request) bool {
		fresh, _ := r.table.Check(req.Client, req.ReqID)
		return fresh && r.inQueue[reqKey(req.Client, req.ReqID)]
	})
	needFlush := r.uncommittedAboveLocked(r.highQC.block)
	now := time.Now()
	var cut batch.Batch
	if needFlush {
		// The pipeline needs a proposal to make progress: ship whatever
		// is queued, even an empty batch.
		cut, _ = r.batcher.Flush(now)
	} else {
		var ok bool
		cut, ok = r.batcher.Cut(now)
		if !ok {
			return
		}
	}
	cut.EndOrder(r.rt.Tracer(), view)

	parent := r.blocks[r.highQC.block]
	if parent == nil {
		return
	}
	digest := batchDigest(cut.Reqs)
	h := blockHash(view, parent.height+1, parent.hash, digest, r.highQC.block)
	b := &block{
		hash: h, view: view, height: parent.height + 1,
		parent: parent.hash, digest: digest, batch: cut.Reqs, justify: r.highQC,
	}
	r.blocks[h] = b
	r.proposed[view] = true

	body := proposeBody(view, h)
	w := wire.NewWriter(1024)
	w.U8(kindPropose)
	w.VarBytes(body)
	w.VarBytes(r.cfg.Auth.TagVector(body))
	w.U64(view)
	w.U64(b.height)
	w.Bytes32(b.parent)
	w.Bytes32(b.digest)
	batch.MarshalInto(w, cut.Reqs)
	// justify QC
	w.U64(b.justify.view)
	w.Bytes32(b.justify.block)
	w.U32(uint32(len(b.justify.parts)))
	for _, p := range b.justify.parts {
		w.U32(p.Replica)
		w.VarBytes(p.Tag)
	}
	r.broadcast(w.Bytes())
	// The proposer processes its own block (votes, commit rule).
	r.processBlockLocked(b)
}

// uncommittedAboveLocked reports whether the chain tip has blocks that
// still need pipeline progress to commit. Caller holds r.mu.
func (r *Replica) uncommittedAboveLocked(tip [32]byte) bool {
	b := r.blocks[tip]
	return b != nil && b.height > r.lastExec
}

func (r *Replica) onPropose(b *block) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.blocks[b.hash]; dup {
		return
	}
	pb := r.blocks[b.parent]
	if pb == nil || pb.height+1 != b.height || b.parent != b.justify.block {
		return // chained HotStuff: blocks extend the justified block
	}
	r.blocks[b.hash] = b
	// De-queue requests carried by the block.
	for _, req := range b.batch {
		delete(r.inQueue, reqKey(req.Client, req.ReqID))
	}
	r.processBlockLocked(b)
}

// validQC verifies a quorum certificate (the genesis QC at view 0 is
// axiomatically valid). It reads only immutable config and key material,
// so verification workers call it off-loop.
func (r *Replica) validQC(q *qc) bool {
	if q.view == 0 && q.block == genesisHash {
		return true
	}
	seen := map[uint32]bool{}
	valid := 0
	for _, p := range q.parts {
		if int(p.Replica) >= r.cfg.N || seen[p.Replica] {
			continue
		}
		if !r.cfg.Auth.VerifyVector(int(p.Replica), voteBody(q.view, q.block, p.Replica), p.Tag) {
			continue
		}
		seen[p.Replica] = true
		valid++
	}
	return valid >= 2*r.cfg.F+1
}

// processBlockLocked applies the HotStuff state rules to a new block:
// update highQC/lockedQC, run the three-chain commit rule, vote. Caller
// holds r.mu.
func (r *Replica) processBlockLocked(b *block) {
	// Update the highest QC from the block's justify.
	if b.justify.view > r.highQC.view {
		r.highQC = b.justify
	}
	// Two-chain: lock the grandparent QC.
	if jb := r.blocks[b.justify.block]; jb != nil && jb.justify != nil && jb.justify.view > r.lockedQC.view {
		r.lockedQC = jb.justify
	}
	// Three-chain commit rule: b ← b1 ← b2 with consecutive heights.
	if b1 := r.blocks[b.justify.block]; b1 != nil && b1.justify != nil {
		if b2 := r.blocks[b1.justify.block]; b2 != nil && b1.parent == b2.hash && b.parent == b1.hash &&
			b1.height == b2.height+1 && b.height == b1.height+1 {
			r.commitLocked(b2)
		}
	}
	// SafeNode: vote once per view, for blocks extending the locked block.
	if !r.voted[b.view] && r.safeNodeLocked(b) {
		r.voted[b.view] = true
		vb := voteBody(b.view, b.hash, uint32(r.cfg.Self))
		vt := r.cfg.Auth.TagVector(vb)
		next := r.leaderOf(b.view + 1)
		w := wire.NewWriter(128)
		w.U8(kindVote)
		w.U32(uint32(r.cfg.Self))
		w.U64(b.view)
		w.Bytes32(b.hash)
		w.VarBytes(vt)
		if next == r.cfg.Self {
			r.recordVoteLocked(b.view, b.hash, uint32(r.cfg.Self), vt)
		} else {
			r.conn.Send(r.cfg.Members[next], w.Bytes())
		}
	}
	r.tryProposeLocked()
}

// safeNodeLocked is the HotStuff voting rule. Caller holds r.mu.
func (r *Replica) safeNodeLocked(b *block) bool {
	if b.justify.view > r.lockedQC.view {
		return true // liveness rule
	}
	// Safety rule: b extends the locked block.
	h := b.parent
	for {
		if h == r.lockedQC.block {
			return true
		}
		pb := r.blocks[h]
		if pb == nil || pb.height == 0 {
			return h == r.lockedQC.block
		}
		h = pb.parent
	}
}

func (r *Replica) onVote(e evVote) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordVoteLocked(e.view, e.hash, e.replica, e.tag)
}

func (r *Replica) recordVoteLocked(view uint64, hash [32]byte, replica uint32, tag []byte) {
	if view < r.highQC.view {
		// A QC at or above this view already formed: the vote can never
		// contribute to a new highQC, so recording it would only grow the
		// vote map (a Byzantine replica could mint one per packet).
		r.mVoteRej.Inc()
		return
	}
	m := r.votes[hash]
	if m == nil {
		m = map[uint32][]byte{}
		r.votes[hash] = m
	}
	m[replica] = tag
	if len(m) >= 2*r.cfg.F+1 && view >= r.highQC.view {
		parts := make([]part, 0, len(m))
		for rep, t := range m {
			parts = append(parts, part{Replica: rep, Tag: t})
		}
		if view+1 > r.highQC.view {
			r.highQC = &qc{view: view, block: hash, parts: parts}
		}
		r.tryProposeLocked()
	}
}

// commitLocked executes a committed block and all uncommitted ancestors,
// in height order. Caller holds r.mu.
func (r *Replica) commitLocked(b *block) {
	if r.committed[b.hash] || b.height <= r.lastExec {
		return
	}
	// Collect the ancestor chain down to the last executed height.
	var chain []*block
	cur := b
	for cur != nil && cur.height > r.lastExec && !r.committed[cur.hash] {
		chain = append(chain, cur)
		cur = r.blocks[cur.parent]
	}
	for i := len(chain) - 1; i >= 0; i-- {
		blk := chain[i]
		r.committed[blk.hash] = true
		r.lastExec = blk.height
		r.mBlocks.Inc()
		r.trace.Record(tkHSCommit, blk.height, blk.view)
		for _, req := range blk.batch {
			fresh, cached := r.table.Check(req.Client, req.ReqID)
			if !fresh {
				if cached != nil {
					r.conn.Send(req.Client, cached.Marshal())
				}
				continue
			}
			result, _ := r.cfg.App.Execute(req.Op)
			r.executedOps++
			r.mCommits.Inc()
			rep := &replication.Reply{
				View: blk.view, Replica: uint32(r.cfg.Self), Slot: blk.height,
				ReqID: req.ReqID, Result: result,
			}
			rep.Auth = r.cfg.ClientAuth.TagFor(int64(req.Client), rep.SignedBody())
			r.table.Store(req.Client, req.ReqID, rep)
			delete(r.inQueue, reqKey(req.Client, req.ReqID))
			r.conn.Send(req.Client, rep.Marshal())
		}
		r.log.Append(blk)
		r.gHigh.Set(int64(r.log.High()))
		if blk.height%uint64(r.cfg.CheckpointInterval) == 0 {
			r.compactLocked(blk)
		}
	}
}

// compactLocked prunes everything below a committed interval boundary.
// Three-chain commits are irrevocable, so — unlike PBFT or Zyzzyva — no
// checkpoint vote exchange is needed before discarding history: local
// finality is the stability rule. Caller holds r.mu.
func (r *Replica) compactLocked(b *block) {
	r.mCkpt.Inc()
	dropped := r.log.TruncateTo(b.height)
	r.mTruncated.Add(uint64(dropped))
	for h, blk := range r.blocks {
		if blk.height < b.height {
			delete(r.blocks, h)
			delete(r.committed, h)
			delete(r.votes, h)
		}
	}
	// Vote sets whose block never arrived are stale or forged by now.
	for h := range r.votes {
		if _, ok := r.blocks[h]; !ok {
			delete(r.votes, h)
		}
	}
	for v := range r.voted {
		if v < b.view {
			delete(r.voted, v)
		}
	}
	for v := range r.proposed {
		if v < b.view {
			delete(r.proposed, v)
		}
	}
	r.gLow.Set(int64(r.log.Low()))
}
