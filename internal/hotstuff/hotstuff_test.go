package hotstuff

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"neobft/internal/crypto/auth"
	"neobft/internal/replication"
	"neobft/internal/simnet"
	"neobft/internal/transport"
)

type counterApp struct {
	mu  sync.Mutex
	sum int64
}

func (a *counterApp) Execute(op []byte) ([]byte, func()) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(op) > 0 {
		a.sum += int64(op[0])
	}
	return []byte(fmt.Sprintf("%d", a.sum)), nil
}

func (a *counterApp) value() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum
}

type cluster struct {
	net      *simnet.Network
	replicas []*Replica
	apps     []*counterApp
	members  []transport.NodeID
	n, f     int
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{net: simnet.New(simnet.Options{}), n: n, f: (n - 1) / 3}
	t.Cleanup(c.net.Close)
	c.members = make([]transport.NodeID, n)
	for i := range c.members {
		c.members[i] = transport.NodeID(i + 1)
	}
	for i := 0; i < n; i++ {
		app := &counterApp{}
		c.apps = append(c.apps, app)
		r := New(Config{
			Self: i, N: n, F: c.f,
			Members:    c.members,
			Conn:       c.net.Join(c.members[i]),
			Auth:       auth.NewHMACAuth([]byte("replica-master"), i, n),
			ClientAuth: auth.NewReplicaSide([]byte("client-master"), i),
			App:        app,
		})
		t.Cleanup(r.Close)
		c.replicas = append(c.replicas, r)
	}
	return c
}

func (c *cluster) client(id int) *replication.Client {
	return NewClient(c.net.Join(transport.NodeID(100+id)), []byte("client-master"),
		c.n, c.f, c.members, replication.Tuning{Timeout: 100 * time.Millisecond})
}

func TestPipelineCommits(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.client(0)
	for i := 1; i <= 20; i++ {
		res, err := cl.Invoke([]byte{1}, 5*time.Second)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if string(res) != fmt.Sprintf("%d", i) {
			t.Fatalf("op %d: result %q", i, res)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newCluster(t, 4)
	const clients, each = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cl := c.client(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := cl.Invoke([]byte{1}, 10*time.Second); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// Eventually all replicas converge on the same executed state.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, app := range c.apps {
			if app.value() == clients*each {
				done++
			}
		}
		if done == c.n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	for i, app := range c.apps {
		t.Logf("replica %d state %d", i, app.value())
	}
	t.Fatal("replicas did not converge")
}

func TestLargerCluster(t *testing.T) {
	c := newCluster(t, 7) // f = 2
	cl := c.client(0)
	for i := 1; i <= 10; i++ {
		res, err := cl.Invoke([]byte{1}, 10*time.Second)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if string(res) != fmt.Sprintf("%d", i) {
			t.Fatalf("op %d: result %q", i, res)
		}
	}
}

func TestForgedProposalRejected(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.client(0)
	if _, err := cl.Invoke([]byte{1}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Let the pipeline finish committing the first op everywhere before
	// taking the baseline.
	settle := time.Now().Add(5 * time.Second)
	for c.replicas[2].Executed() < 1 && time.Now().Before(settle) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	before := c.replicas[2].Executed()
	// Send a structurally valid proposal with a bogus leader tag.
	evil := c.net.Join(999)
	body := proposeBody(100, [32]byte{1})
	pkt := make([]byte, 0, 256)
	pkt = append(pkt, kindPropose)
	pkt = appendVar(pkt, body)
	pkt = appendVar(pkt, make([]byte, 32))
	time.Sleep(5 * time.Millisecond)
	evil.Send(c.members[2], pkt)
	time.Sleep(20 * time.Millisecond)
	if c.replicas[2].Executed() != before {
		t.Fatal("forged proposal affected execution")
	}
}

func appendVar(buf, b []byte) []byte {
	buf = append(buf, byte(len(b)), byte(len(b)>>8), byte(len(b)>>16), byte(len(b)>>24))
	return append(buf, b...)
}
