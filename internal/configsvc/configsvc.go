// Package configsvc models the aom configuration service (§4.1): it
// tracks group membership, derives and distributes per-epoch
// authentication keys, designates one sequencer switch per group, and
// performs sequencer failover when receivers report a faulty switch.
//
// The paper's configuration service is an out-of-band, trusted component
// reached over TLS with standard (non-Byzantine) failure assumptions; we
// model that control plane as a shared in-process object with
// synchronized methods. The data plane remains pure message passing.
package configsvc

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"neobft/internal/aom"
	"neobft/internal/crypto/secp256k1"
	"neobft/internal/crypto/siphash"
	"neobft/internal/sequencer"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

// SwitchHandle pairs a sequencer switch with its network identity.
type SwitchHandle struct {
	ID transport.NodeID
	SW *sequencer.Switch
}

// switchControl is what the service needs from a registered switch:
// pushing group state and reading its signing identity. An in-process
// switch implements it directly; a remote one is represented by a stub.
type switchControl interface {
	InstallGroup(sequencer.GroupConfig)
	PublicKey() secp256k1.PublicKey
}

type switchEntry struct {
	id  transport.NodeID
	ctl switchControl
}

// remoteSwitch stands in for a sequencer switch hosted by another
// process. Group installation is a no-op here: every process in a
// multi-process deployment runs its own Service seeded with the same
// master secret, and the process actually hosting the switch installs
// the (identically derived) keys locally.
type remoteSwitch struct {
	pub secp256k1.PublicKey
}

func (r remoteSwitch) InstallGroup(sequencer.GroupConfig) {}
func (r remoteSwitch) PublicKey() secp256k1.PublicKey     { return r.pub }

// View is the published state of one aom group: where to send, which
// epoch is live, and the credentials receivers need.
type View struct {
	Group     uint32
	Epoch     uint32
	Variant   wire.AuthKind
	Sequencer transport.NodeID
	Members   []transport.NodeID
	SwitchPub secp256k1.PublicKey
}

type groupState struct {
	view      View
	switchIdx int // index into svc.switches of the live sequencer
}

// Service is the configuration service.
type Service struct {
	variant wire.AuthKind
	master  []byte

	mu       sync.Mutex
	switches []switchEntry
	groups   map[uint32]*groupState
}

// New creates a configuration service managing switches of one
// authenticator variant. The master secret seeds per-epoch HMAC key
// derivation (the key-exchange protocol of §4.3, abstracted).
func New(variant wire.AuthKind, master []byte) *Service {
	return &Service{
		variant: variant,
		master:  master,
		groups:  make(map[uint32]*groupState),
	}
}

// RegisterSwitch adds an in-process sequencer switch to the pool of
// failover candidates.
func (s *Service) RegisterSwitch(h SwitchHandle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.switches = append(s.switches, switchEntry{id: h.ID, ctl: h.SW})
}

// RegisterRemoteSwitch adds a sequencer switch that lives in another
// process: only its network identity (and, for the PK variant, its
// public key) are known here. HMAC-variant deployments need nothing
// else — per-epoch keys derive deterministically from the shared master
// secret on every process. PK-variant multi-process deployments would
// additionally need the remote switch's key distribution, which this
// model does not implement.
func (s *Service) RegisterRemoteSwitch(id transport.NodeID, pub secp256k1.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.switches = append(s.switches, switchEntry{id: id, ctl: remoteSwitch{pub: pub}})
}

// DeriveHMACKey returns receiver idx's lane key for (group, epoch). Both
// the service (installing switch state) and receivers derive the same key.
func (s *Service) DeriveHMACKey(group, epoch uint32, idx int) siphash.HalfKey {
	h := sha256.New()
	h.Write([]byte("aom/hmac-key/v1"))
	h.Write(s.master)
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[0:], group)
	binary.LittleEndian.PutUint32(buf[4:], epoch)
	binary.LittleEndian.PutUint64(buf[8:], uint64(idx))
	h.Write(buf[:])
	var k siphash.HalfKey
	copy(k[:], h.Sum(nil))
	return k
}

// CreateGroup creates an aom group on the first registered switch and
// returns the initial view.
func (s *Service) CreateGroup(group uint32, members []transport.NodeID) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.switches) == 0 {
		return View{}, fmt.Errorf("configsvc: no switches registered")
	}
	if _, exists := s.groups[group]; exists {
		return View{}, fmt.Errorf("configsvc: group %d already exists", group)
	}
	g := &groupState{switchIdx: 0}
	g.view = View{Group: group, Epoch: 1, Variant: s.variant, Members: append([]transport.NodeID(nil), members...)}
	s.installLocked(g)
	s.groups[group] = g
	return g.view, nil
}

// installLocked pushes the group's current view to the live switch.
func (s *Service) installLocked(g *groupState) {
	h := s.switches[g.switchIdx]
	cfg := sequencer.GroupConfig{
		Group:   g.view.Group,
		Epoch:   g.view.Epoch,
		Members: g.view.Members,
	}
	if s.variant == wire.AuthHMAC {
		cfg.HMACKeys = make([]siphash.HalfKey, len(g.view.Members))
		for i := range cfg.HMACKeys {
			cfg.HMACKeys[i] = s.DeriveHMACKey(g.view.Group, g.view.Epoch, i)
		}
	}
	h.ctl.InstallGroup(cfg)
	g.view.Sequencer = h.id
	g.view.SwitchPub = h.ctl.PublicKey()
}

// View returns the current published view of a group.
func (s *Service) View(group uint32) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return View{}, fmt.Errorf("configsvc: unknown group %d", group)
	}
	return g.view, nil
}

// ReceiverEpochConfig returns the libAOM epoch credentials for the
// receiver at index idx under the group's current view.
func (s *Service) ReceiverEpochConfig(group uint32, idx int) (aom.EpochConfig, error) {
	v, err := s.View(group)
	if err != nil {
		return aom.EpochConfig{}, err
	}
	return s.epochConfigForView(v, idx), nil
}

func (s *Service) epochConfigForView(v View, idx int) aom.EpochConfig {
	ep := aom.EpochConfig{Epoch: v.Epoch, SwitchPub: v.SwitchPub}
	if s.variant == wire.AuthHMAC {
		ep.HMACKey = s.DeriveHMACKey(v.Group, v.Epoch, idx)
	}
	return ep
}

// Failover replaces the group's sequencer, bumping the epoch. It is
// idempotent against concurrent reports: callers pass the epoch they
// believe is live; if the service has already moved past it, the current
// view is returned without another failover.
func (s *Service) Failover(group, fromEpoch uint32) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return View{}, fmt.Errorf("configsvc: unknown group %d", group)
	}
	if g.view.Epoch != fromEpoch {
		return g.view, nil // already failed over
	}
	if len(s.switches) < 2 {
		return View{}, fmt.Errorf("configsvc: no standby switch for group %d", group)
	}
	g.switchIdx = (g.switchIdx + 1) % len(s.switches)
	g.view.Epoch++
	s.installLocked(g)
	return g.view, nil
}

// EpochConfigFor converts a view into receiver credentials; useful when a
// replica learns a new view through the view-change protocol rather than
// by querying the service.
func (s *Service) EpochConfigFor(v View, idx int) aom.EpochConfig {
	return s.epochConfigForView(v, idx)
}
