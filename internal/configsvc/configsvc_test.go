package configsvc

import (
	"sync"
	"testing"
	"time"

	"neobft/internal/aom"
	"neobft/internal/sequencer"
	"neobft/internal/simnet"
	"neobft/internal/transport"
	"neobft/internal/wire"
)

func rig(t *testing.T, variant wire.AuthKind, nSwitches int) (*Service, *simnet.Network, []SwitchHandle) {
	t.Helper()
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	svc := New(variant, []byte("master"))
	handles := make([]SwitchHandle, nSwitches)
	for i := 0; i < nSwitches; i++ {
		id := transport.NodeID(1000 + i)
		sw := sequencer.New(net.Join(id), sequencer.Options{
			Variant: variant,
			PKSeed:  []byte{byte(i)},
		})
		handles[i] = SwitchHandle{ID: id, SW: sw}
		svc.RegisterSwitch(handles[i])
	}
	return svc, net, handles
}

func TestCreateGroupAndView(t *testing.T) {
	svc, _, handles := rig(t, wire.AuthHMAC, 2)
	members := []transport.NodeID{1, 2, 3, 4}
	v, err := svc.CreateGroup(7, members)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 1 || v.Sequencer != handles[0].ID || len(v.Members) != 4 {
		t.Fatalf("view = %+v", v)
	}
	v2, err := svc.View(7)
	if err != nil || v2.Epoch != 1 {
		t.Fatalf("View = %+v, %v", v2, err)
	}
	if _, err := svc.CreateGroup(7, members); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if _, err := svc.View(99); err == nil {
		t.Fatal("unknown group view returned")
	}
}

func TestKeyDerivationConsistency(t *testing.T) {
	svc := New(wire.AuthHMAC, []byte("m"))
	a := svc.DeriveHMACKey(1, 1, 0)
	b := svc.DeriveHMACKey(1, 1, 0)
	if a != b {
		t.Fatal("key derivation not deterministic")
	}
	if svc.DeriveHMACKey(1, 2, 0) == a {
		t.Fatal("epoch not bound into key")
	}
	if svc.DeriveHMACKey(2, 1, 0) == a {
		t.Fatal("group not bound into key")
	}
	if svc.DeriveHMACKey(1, 1, 1) == a {
		t.Fatal("receiver index not bound into key")
	}
}

func TestFailoverBumpsEpochAndSwitch(t *testing.T) {
	svc, _, handles := rig(t, wire.AuthHMAC, 3)
	svc.CreateGroup(1, []transport.NodeID{1, 2, 3, 4})
	v, err := svc.Failover(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 2 || v.Sequencer != handles[1].ID {
		t.Fatalf("after failover: %+v", v)
	}
	// Idempotence: a second report for the old epoch does nothing.
	v2, err := svc.Failover(1, 1)
	if err != nil || v2.Epoch != 2 {
		t.Fatalf("stale failover changed the view: %+v, %v", v2, err)
	}
	// Rotation wraps around.
	svc.Failover(1, 2)
	v4, _ := svc.Failover(1, 3)
	if v4.Sequencer != handles[0].ID || v4.Epoch != 4 {
		t.Fatalf("rotation: %+v", v4)
	}
}

func TestFailoverWithoutStandby(t *testing.T) {
	svc, _, _ := rig(t, wire.AuthHMAC, 1)
	svc.CreateGroup(1, []transport.NodeID{1, 2})
	if _, err := svc.Failover(1, 1); err == nil {
		t.Fatal("failover without standby succeeded")
	}
}

func TestConcurrentFailoverReports(t *testing.T) {
	svc, _, _ := rig(t, wire.AuthHMAC, 4)
	svc.CreateGroup(1, []transport.NodeID{1, 2, 3, 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Failover(1, 1) // all report the same failed epoch
		}()
	}
	wg.Wait()
	v, _ := svc.View(1)
	if v.Epoch != 2 {
		t.Fatalf("concurrent reports produced epoch %d, want exactly 2", v.Epoch)
	}
}

// TestEndToEndFailover exercises the full loop: traffic through switch A,
// failover, traffic through switch B in a new epoch.
func TestEndToEndFailover(t *testing.T) {
	svc, net, handles := rig(t, wire.AuthHMAC, 2)
	members := []transport.NodeID{1, 2, 3, 4}
	v, _ := svc.CreateGroup(1, members)

	type evt struct {
		epoch uint32
		seq   uint64
		body  string
	}
	var mu sync.Mutex
	var got []evt
	recvs := make([]*aom.Receiver, 4)
	for i := 0; i < 4; i++ {
		conn := net.Join(members[i])
		idx := i
		ep, _ := svc.ReceiverEpochConfig(1, idx)
		r := aom.NewReceiver(aom.ReceiverConfig{
			Group: 1, Variant: wire.AuthHMAC, SelfIndex: idx, Members: members,
			Deliver: func(d aom.Delivery) {
				if idx == 0 && !d.Dropped {
					mu.Lock()
					got = append(got, evt{d.Epoch, d.Seq, string(d.Payload)})
					mu.Unlock()
				}
			},
		}, ep)
		t.Cleanup(r.Close)
		recvs[i] = r
		conn.SetHandler(func(from transport.NodeID, p []byte) { r.HandlePacket(from, p) })
	}
	sender := aom.NewSender(net.Join(500), 1, v.Sequencer)
	sender.Send([]byte("before"))
	waitLen := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			l := len(got)
			mu.Unlock()
			if l >= n {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		t.Fatalf("timed out waiting for %d deliveries", n)
	}
	waitLen(1)

	// Switch A dies; receivers report; service fails over to B.
	handles[0].SW.SetFault(sequencer.FaultCrash)
	v2, err := svc.Failover(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recvs {
		r.InstallEpoch(svc.EpochConfigFor(v2, i))
	}
	sender.SetSequencer(v2.Sequencer)
	sender.Send([]byte("after"))
	waitLen(2)
	mu.Lock()
	defer mu.Unlock()
	if got[1].epoch != 2 || got[1].seq != 1 || got[1].body != "after" {
		t.Fatalf("post-failover delivery = %+v", got[1])
	}
}
