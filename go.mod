module neobft

go 1.22
