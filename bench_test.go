// Package neobft_bench holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (§6), plus ablation benchmarks for the design choices called out in
// DESIGN.md. Each macro benchmark drives a full system under closed-loop
// load and reports throughput and latency as custom metrics; the
// companion CLI (cmd/neobench) prints the full tables.
//
// Run with:
//
//	go test -bench=. -benchmem
package neobft_bench

import (
	"fmt"
	"testing"
	"time"

	"neobft/internal/bench"
	"neobft/internal/crypto/auth"
	"neobft/internal/crypto/secp256k1"
	"neobft/internal/kvstore"
	"neobft/internal/pbft"
	"neobft/internal/replication"
	"neobft/internal/runtime"
	"neobft/internal/sequencer"
	"neobft/internal/simnet"
	"neobft/internal/transport"
	"neobft/internal/ycsb"
)

// measure runs one closed-loop window against a system and reports
// throughput/latency metrics. Macro benchmarks run the window once per
// b.N batch (the window length already averages thousands of ops).
func measure(b *testing.B, opts bench.Options, clients int, op func(client, seq int) []byte) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sys := bench.Build(opts)
		res := bench.Run(sys, bench.Load{
			Clients:  clients,
			Warmup:   100 * time.Millisecond,
			Duration: 400 * time.Millisecond,
			Op:       op,
		})
		sys.Close()
		s := bench.Summarize(res.Latencies)
		b.ReportMetric(res.Throughput, "ops/s")
		b.ReportMetric(res.ProjectedTput, "proj-ops/s")
		b.ReportMetric(float64(s.Median.Microseconds()), "median-µs")
		b.ReportMetric(res.MsgsPerOp, "msgs/op")
	}
}

// --- Figure 7: latency vs throughput, one benchmark per system ---------

func BenchmarkFig7_Unreplicated(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.Unreplicated}, 16, nil)
}

func BenchmarkFig7_NeoHM(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.NeoHM}, 16, nil)
}

func BenchmarkFig7_NeoPK(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.NeoPK, SignRate: 2000}, 16, nil)
}

func BenchmarkFig7_NeoBN(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.NeoBN}, 16, nil)
}

func BenchmarkFig7_Zyzzyva(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.Zyzzyva}, 16, nil)
}

func BenchmarkFig7_ZyzzyvaF(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.ZyzzyvaF}, 16, nil)
}

func BenchmarkFig7_PBFT(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.PBFT}, 16, nil)
}

func BenchmarkFig7_HotStuff(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.HotStuff}, 16, nil)
}

func BenchmarkFig7_MinBFT(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.MinBFT}, 16, nil)
}

// --- Table 1: measured complexity (unbatched) ---------------------------

func BenchmarkTable1_Complexity(b *testing.B) {
	for _, p := range []bench.Protocol{bench.NeoHM, bench.PBFT, bench.Zyzzyva, bench.MinBFT} {
		b.Run(string(p), func(b *testing.B) {
			measure(b, bench.Options{Protocol: p, BatchSize: 1}, 4, nil)
		})
	}
}

// --- Figures 4-6: aom hardware models ------------------------------------

func BenchmarkFig4_AOMHMLatency(b *testing.B) {
	m := sequencer.HMACModel(4)
	for i := 0; i < b.N; i++ {
		s := m.SimulateLatency(0.5, 10000, 1)
		b.ReportMetric(float64(sequencer.Percentile(s, 50).Nanoseconds())/1000, "p50-µs")
	}
}

func BenchmarkFig5_AOMPKLatency(b *testing.B) {
	m := sequencer.PKModel(4)
	for i := 0; i < b.N; i++ {
		s := m.SimulateLatency(0.5, 10000, 1)
		b.ReportMetric(float64(sequencer.Percentile(s, 50).Nanoseconds())/1000, "p50-µs")
	}
}

func BenchmarkFig6_AOMThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(sequencer.HMACModel(4).MaxThroughput()/1e6, "hm4-Mpps")
		b.ReportMetric(sequencer.HMACModel(64).MaxThroughput()/1e6, "hm64-Mpps")
		b.ReportMetric(sequencer.PKModel(64).MaxThroughput()/1e6, "pk-Mpps")
	}
}

// --- Figure 8: scalability ------------------------------------------------

func BenchmarkFig8_Scalability(b *testing.B) {
	for _, n := range []int{4, 10, 22} {
		b.Run(string(rune('0'+n/10))+string(rune('0'+n%10))+"replicas", func(b *testing.B) {
			measure(b, bench.Options{Protocol: bench.NeoHM, N: n}, 8, nil)
		})
	}
}

// --- Figure 9: drops --------------------------------------------------------

func BenchmarkFig9_Drops(b *testing.B) {
	for _, rate := range []float64{0.0001, 0.01} {
		name := "0.01pct"
		if rate == 0.01 {
			name = "1pct"
		}
		b.Run(name, func(b *testing.B) {
			measure(b, bench.Options{Protocol: bench.NeoHM, DropRate: rate, ClientTimeout: 200 * time.Millisecond}, 16, nil)
		})
	}
}

// --- Figure 10: YCSB --------------------------------------------------------

func BenchmarkFig10_YCSB(b *testing.B) {
	wl := ycsb.WorkloadA()
	wl.RecordCount = 10_000
	for _, p := range []bench.Protocol{bench.NeoHM, bench.PBFT} {
		b.Run(string(p), func(b *testing.B) {
			gens := make([]*ycsb.Generator, 64)
			for i := range gens {
				gens[i] = ycsb.NewGenerator(wl, int64(i))
			}
			opts := bench.Options{
				Protocol: p,
				AppFactory: func(int) replication.App {
					s := kvstore.NewStore()
					ycsb.Load(s, wl)
					return s
				},
			}
			measure(b, opts, 16, func(client, seq int) []byte {
				return gens[client%len(gens)].Next()
			})
		})
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// BenchmarkAblation_Precompute compares k·G with the precomputed
// generator table (the FPGA pre-compute module) against plain
// double-and-add.
func BenchmarkAblation_Precompute(b *testing.B) {
	var kb [32]byte
	copy(kb[8:], []byte{0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0xba, 0xbe,
		0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
		0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88})
	k := secp256k1.NewScalarReduced(kb)
	b.Run("table", func(b *testing.B) {
		secp256k1.BaseMult(k) // warm the table
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			secp256k1.BaseMult(k)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			secp256k1.BaseMultSlow(k)
		}
	})
}

// BenchmarkAblation_SignRatio compares aom-pk with the signing-ratio
// controller + hash chaining against signing every packet.
func BenchmarkAblation_SignRatio(b *testing.B) {
	for name, rate := range map[string]float64{"sign-all": 0, "ratio-2000": 2000} {
		b.Run(name, func(b *testing.B) {
			measure(b, bench.Options{Protocol: bench.NeoPK, SignRate: rate}, 8, nil)
		})
	}
}

// BenchmarkAblation_ConfirmBatching compares Neo-BN with per-packet
// confirms against batched confirm flushing (§6.2).
func BenchmarkAblation_ConfirmBatching(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) {
		measure(b, bench.Options{Protocol: bench.NeoBN, ConfirmFlushEvery: -1}, 16, nil)
	})
	b.Run("batched-200us", func(b *testing.B) {
		measure(b, bench.Options{Protocol: bench.NeoBN, ConfirmFlushEvery: 200 * time.Microsecond}, 16, nil)
	})
}

// BenchmarkAblation_HMACSubgroups quantifies the folded-pipeline
// subgroup design: vector generation throughput for one 4-lane engine
// pass versus the naive 6-pass-per-HMAC reference (§4.3).
func BenchmarkAblation_HMACSubgroups(b *testing.B) {
	unrolled := sequencer.HMACModel(16) // 4 subgroup bundles
	// The reference design computes one HMAC per 6 passes with no
	// parallel lanes: model it as 4x the per-packet units with a single
	// lane per bundle.
	naive := unrolled
	naive.UnitsPerPacket *= 4
	b.ReportMetric(unrolled.MaxThroughput()/1e6, "unrolled-Mpps")
	b.ReportMetric(naive.MaxThroughput()/1e6, "naive-Mpps")
}

// BenchmarkAblation_Batching sweeps the baseline batch size, showing why
// baselines need batching (and the latency it costs) while NeoBFT runs
// unbatched.
func BenchmarkAblation_Batching(b *testing.B) {
	for _, size := range []int{1, 8, 32} {
		b.Run(string(rune('0'+size/10))+string(rune('0'+size%10)), func(b *testing.B) {
			measure(b, bench.Options{Protocol: bench.PBFT, BatchSize: size}, 16, nil)
		})
	}
}

// BenchmarkEndToEnd_UDP exercises the real-socket transport under the
// same protocol stack (sanity check that simnet numbers are not an
// artifact of in-memory channels).
func BenchmarkEndToEnd_SimnetLatency(b *testing.B) {
	measure(b, bench.Options{Protocol: bench.NeoHM, Net: simnet.Options{Latency: 20 * time.Microsecond}}, 4, nil)
}

// --- Verification pipeline (internal/runtime) -------------------------------

// sinkConn is a transport.Conn that swallows outbound packets; the
// benchmark plays the delivery goroutine itself.
type sinkConn struct {
	id      transport.NodeID
	handler transport.Handler
}

func (c *sinkConn) ID() transport.NodeID                 { return c.id }
func (c *sinkConn) Send(to transport.NodeID, pkt []byte) {}
func (c *sinkConn) SetHandler(h transport.Handler)       { c.handler = h }
func (c *sinkConn) Close() error                         { return nil }

// benchVerifyFlood floods one PBFT replica with authenticated
// prepare/commit packets from every peer and measures packets retired
// per second through the runtime. workers < 0 verifies inline on the
// delivery goroutine; workers > 0 verifies on that many pipeline
// workers with in-order retirement. Sequence numbers cycle through a
// small window so slot state stays bounded and the steady-state cost is
// pure decode + HMAC-vector verification + apply.
func benchVerifyFlood(b *testing.B, n, workers int) {
	b.Helper()
	f := (n - 1) / 3
	master := []byte("replica-master")
	mem := make([]transport.NodeID, n)
	for i := range mem {
		mem[i] = transport.NodeID(i + 1)
	}
	conn := &sinkConn{id: mem[0]}
	rt := runtime.New(runtime.Config{Conn: conn, Workers: workers, Queue: 8192})
	r := pbft.New(pbft.Config{
		Self: 0, N: n, F: f,
		Members:    mem,
		Conn:       conn,
		Auth:       auth.NewHMACAuth(master, 0, n),
		ClientAuth: auth.NewReplicaSide([]byte("client-master"), 0),
		App:        replication.EchoApp{},
		BatchSize:  8,
		Runtime:    rt,
	})
	defer r.Close()

	// Pre-encode the flood: prepares and commits for a window of slots
	// from every peer replica, exactly as peers would broadcast them.
	const seqWindow = 256
	digest := replication.RequestDigest(&replication.Request{ReqID: 1, Op: []byte("flood")})
	type delivery struct {
		from transport.NodeID
		pkt  []byte
	}
	var flood []delivery
	for rep := 1; rep < n; rep++ {
		a := auth.NewHMACAuth(master, rep, n)
		for seq := uint64(1); seq <= seqWindow; seq++ {
			flood = append(flood,
				delivery{mem[rep], pbft.EncodePrepare(a, uint32(rep), 0, seq, digest)},
				delivery{mem[rep], pbft.EncodeCommit(a, uint32(rep), 0, seq, digest)})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := flood[i%len(flood)]
		conn.handler(d.from, d.pkt)
	}
	rt.Flush() // count queued work into the timed region
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkVerifyInline is the baseline: authenticator verification runs
// on the delivery goroutine, serialized with apply.
func BenchmarkVerifyInline(b *testing.B) {
	for _, n := range []int{4, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchVerifyFlood(b, n, -1) })
	}
}

// BenchmarkVerifyPipelined runs the same flood with verification on
// runtime workers. On a multi-core host the verification stage scales
// with the worker count while apply stays single-threaded; with
// GOMAXPROCS=1 it mostly measures pipeline overhead.
func BenchmarkVerifyPipelined(b *testing.B) {
	for _, n := range []int{4, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchVerifyFlood(b, n, 4) })
	}
}
